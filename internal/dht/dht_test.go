package dht_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"zerber/internal/auth"
	"zerber/internal/client"
	"zerber/internal/confidential"
	"zerber/internal/dht"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/server"
	"zerber/internal/transport"
	"zerber/internal/vocab"
)

func TestRingOwnershipStable(t *testing.T) {
	r := dht.NewRing(16)
	r.AddNode("a")
	r.AddNode("b")
	r.AddNode("c")
	// Ownership is deterministic.
	for lid := merging.ListID(0); lid < 100; lid++ {
		o1, err := r.OwnerOfList(lid)
		if err != nil {
			t.Fatal(err)
		}
		o2, _ := r.OwnerOfList(lid)
		if o1 != o2 {
			t.Fatal("ownership not deterministic")
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := dht.NewRing(8)
	if _, err := r.Owner(42); err == nil {
		t.Error("empty ring must error")
	}
	r.AddNode("a")
	r.AddNode("a") // idempotent
	if r.NumNodes() != 1 {
		t.Errorf("NumNodes = %d", r.NumNodes())
	}
	if !r.RemoveNode("a") || r.RemoveNode("a") {
		t.Error("remove semantics wrong")
	}
}

func TestRingBalance(t *testing.T) {
	r := dht.NewRing(64)
	for i := 0; i < 5; i++ {
		r.AddNode(fmt.Sprintf("node%d", i))
	}
	counts := map[string]int{}
	for lid := merging.ListID(0); lid < 5000; lid++ {
		o, err := r.OwnerOfList(lid)
		if err != nil {
			t.Fatal(err)
		}
		counts[o]++
	}
	for node, n := range counts {
		if n < 400 || n > 2200 {
			t.Errorf("node %s owns %d of 5000 lists; ring badly balanced", node, n)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Consistent hashing: adding one node must not reassign most lists.
	r := dht.NewRing(64)
	r.AddNode("a")
	r.AddNode("b")
	r.AddNode("c")
	before := map[merging.ListID]string{}
	for lid := merging.ListID(0); lid < 2000; lid++ {
		o, _ := r.OwnerOfList(lid)
		before[lid] = o
	}
	r.AddNode("d")
	moved := 0
	for lid, prev := range before {
		now, _ := r.OwnerOfList(lid)
		if now != prev {
			moved++
			if now != "d" {
				t.Fatalf("list %d moved to %s, not the new node", lid, now)
			}
		}
	}
	// Expect about 1/4 of keys to move; far less than half.
	if moved == 0 || moved > 1000 {
		t.Errorf("%d of 2000 lists moved after one join", moved)
	}
}

// dhtEnv builds a 2-slot (k=2) DHT deployment with several physical
// nodes per slot, plus the usual table/vocab/auth plumbing.
type dhtEnv struct {
	slots  []*dht.Slot
	apis   []transport.API
	svc    *auth.Service
	groups *auth.GroupTable
	table  *merging.Table
	voc    *vocab.Vocabulary
}

func newDHTEnv(t *testing.T, nodesPerSlot int) *dhtEnv {
	t.Helper()
	svc, err := auth.NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	groups := auth.NewGroupTable()
	groups.Add("alice", 1)

	dfs := map[string]int{}
	for i := 0; i < 40; i++ {
		dfs[fmt.Sprintf("term%02d", i)] = 40 - i
	}
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		t.Fatal(err)
	}
	table, err := merging.Build(dist, merging.Options{Heuristic: merging.UDM, M: 16})
	if err != nil {
		t.Fatal(err)
	}
	voc := vocab.NewFromTerms(table.ListedTerms())

	e := &dhtEnv{svc: svc, groups: groups, table: table, voc: voc}
	for slot := 0; slot < 2; slot++ {
		x := field.Element(slot + 1)
		s, err := dht.NewSlot(x, 32)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < nodesPerSlot; n++ {
			srv := server.New(server.Config{
				Name: fmt.Sprintf("slot%d-node%d", slot, n), X: x, Auth: svc, Groups: groups,
			})
			if err := s.AddNode(fmt.Sprintf("node%d", n), srv); err != nil {
				t.Fatal(err)
			}
		}
		e.slots = append(e.slots, s)
		e.apis = append(e.apis, s)
	}
	return e
}

func (e *dhtEnv) indexDocs(t *testing.T) *peer.Peer {
	t.Helper()
	p, err := peer.New(peer.Config{
		Name: "site", Servers: e.apis, K: 2, Table: e.table, Vocab: e.voc,
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tok := e.svc.Issue("alice")
	b := p.NewBatch()
	for d := 0; d < 20; d++ {
		content := ""
		for i := d % 7; i < 40; i += 7 {
			content += fmt.Sprintf("term%02d ", i)
		}
		if err := b.Add(peer.Document{ID: uint32(d + 1), Content: content, Group: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(tok); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDHTEndToEndSearch(t *testing.T) {
	e := newDHTEnv(t, 3)
	p := e.indexDocs(t)
	tok := e.svc.Issue("alice")

	cl, err := client.New(e.apis, 2, e.table, e.voc)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := cl.Search(tok, []string{"term00"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// term00 appears in docs where d%7 == 0 position chain: d%7==0 -> i starts 0.
	want := 0
	for _, post := range p.Local().Lookup("term00") {
		_ = post
		want++
	}
	if len(res) != want {
		t.Fatalf("DHT search found %d docs, local index says %d", len(res), want)
	}
	if stats.ServersQueried != 2 {
		t.Errorf("queried %d slots, want 2", stats.ServersQueried)
	}
	// Shares really are spread: every physical node holds some lists.
	for si, slot := range e.slots {
		dist := slot.ListDistribution()
		empty := 0
		for _, n := range dist {
			if n == 0 {
				empty++
			}
		}
		if empty == len(dist) {
			t.Errorf("slot %d: all nodes empty", si)
		}
	}
}

func TestDHTNodeJoinMigratesAndKeepsSearching(t *testing.T) {
	e := newDHTEnv(t, 2)
	e.indexDocs(t)
	tok := e.svc.Issue("alice")
	cl, err := client.New(e.apis, 2, e.table, e.voc)
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := cl.Search(tok, []string{"term01"}, 100)
	if err != nil {
		t.Fatal(err)
	}

	// A new node joins slot 0; lists it now owns migrate to it.
	x := e.slots[0].XCoord()
	newNode := server.New(server.Config{Name: "slot0-new", X: x, Auth: e.svc, Groups: e.groups})
	if err := e.slots[0].AddNode("newnode", newNode); err != nil {
		t.Fatal(err)
	}
	after, _, err := cl.Search(tok, []string{"term01"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("results changed after join: %d -> %d", len(before), len(after))
	}
}

func TestDHTNodeLeaveMigratesAndKeepsSearching(t *testing.T) {
	e := newDHTEnv(t, 3)
	e.indexDocs(t)
	tok := e.svc.Issue("alice")
	cl, err := client.New(e.apis, 2, e.table, e.voc)
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := cl.Search(tok, []string{"term02"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.slots[0].RemoveNode("node1"); err != nil {
		t.Fatal(err)
	}
	after, _, err := cl.Search(tok, []string{"term02"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("results changed after leave: %d -> %d", len(before), len(after))
	}
	if e.slots[0].NumNodes() != 2 {
		t.Errorf("slot has %d nodes after leave", e.slots[0].NumNodes())
	}
}

func TestDHTCannotRemoveLastNode(t *testing.T) {
	e := newDHTEnv(t, 1)
	if err := e.slots[0].RemoveNode("node0"); err == nil {
		t.Error("removing the last node must fail")
	}
}

func TestDHTSlotValidation(t *testing.T) {
	if _, err := dht.NewSlot(0, 8); err == nil {
		t.Error("x=0 slot must be rejected")
	}
	e := newDHTEnv(t, 1)
	wrongX := server.New(server.Config{
		Name: "bad", X: 99, Auth: e.svc, Groups: e.groups,
	})
	if err := e.slots[0].AddNode("bad", wrongX); err == nil {
		t.Error("node with mismatched x-coordinate must be rejected")
	}
	existing, _ := e.slots[0].Node("node0")
	if err := e.slots[0].AddNode("node0", existing); err == nil {
		t.Error("duplicate node name must be rejected")
	}
	if err := e.slots[0].RemoveNode("ghost"); err == nil {
		t.Error("removing an unknown node must fail")
	}
}

func TestDHTDeleteRoutesCorrectly(t *testing.T) {
	e := newDHTEnv(t, 3)
	p := e.indexDocs(t)
	tok := e.svc.Issue("alice")
	if err := p.DeleteDocument(tok, 1); err != nil {
		t.Fatal(err)
	}
	cl, err := client.New(e.apis, 2, e.table, e.voc)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := cl.Search(tok, []string{"term00"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.DocID == 1 {
			t.Fatal("deleted document still findable over the DHT")
		}
	}
}
