package dht

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"zerber/internal/merging"
	"zerber/internal/posting"
	"zerber/internal/server"
)

// This file is the slot's online migration engine: an epoch-stamped
// two-phase handoff that moves one merged posting list between nodes
// while the slot keeps serving reads and journaled mutations.
//
// Phase 1 (copy): the source stays authoritative. The engine snapshots
// the list under the routing lock and streams it to the target in
// chunks through a TransferSink, with a per-transfer timeout and
// bounded exponential retry. Mutations that land mid-copy are applied
// to the source as usual and their global IDs recorded in the move's
// dirty set; drain rounds reconcile the target with the source's
// current state of exactly those IDs, which is idempotent and
// condition-free (upsert what exists, remove what does not).
//
// Phase 2 (cutover): once a drain round finds the dirty set empty, the
// engine re-checks it under the exclusive routing lock — every serving
// call holds the read lock across its routing decision and dispatch,
// so an empty dirty set under the write lock proves no mutation can be
// in flight between the two replicas — and atomically flips ownership.
// Only after the flip does the source drop its copy.
//
// Failure at any point before the flip aborts only that list's move:
// the target is told to discard the partial list, the source retains
// authority through a routing override, and the slot keeps serving.
// A failed cleanup is remembered and retried by the next Rebalance, so
// the slot degrades to "some lists still on their old owners" rather
// than wedging or losing data.
//
// Every delivery carries (epoch, seq): the epoch identifies the
// membership operation that started the move and fences deliveries
// from earlier, aborted attempts; the sequence number totally orders
// one move's stream so duplicated or arbitrarily delayed redeliveries
// are acknowledged without being re-applied.

// Epoch identifies one membership operation (join, leave, rebalance)
// of a slot. Transfer deliveries stamped with an older epoch than the
// list's current move are rejected, so a retried move can never be
// corrupted by stragglers from an aborted attempt.
type Epoch uint64

// ErrStaleTransfer reports a transfer delivery that does not match an
// active move (wrong epoch, no move in progress, or a sequence gap).
// It is permanent: the sender must not retry.
var ErrStaleTransfer = errors.New("dht: stale transfer delivery")

// TransferSink is the node-to-node migration wire. The default sink
// delivers in-process into the slot's own Deliver* endpoints; tests
// and the model checker interpose sinks that drop, duplicate, delay,
// and reorder deliveries like any other network.
//
// Migration is a trusted server-to-server protocol below the client
// API: shares stay encrypted throughout and no tokens are involved.
type TransferSink interface {
	// Ingest upserts a batch of shares into target's copy of the list.
	Ingest(ctx context.Context, target string, ep Epoch, seq uint64, lid merging.ListID, shares []posting.EncryptedShare) error
	// Remove deletes the given global IDs from target's copy of the
	// list (absent IDs are fine — removal reconciles state).
	Remove(ctx context.Context, target string, ep Epoch, seq uint64, lid merging.ListID, gids []posting.GlobalID) error
	// Abort tells target to discard its partial copy of the list.
	Abort(ctx context.Context, target string, ep Epoch, lid merging.ListID) error
}

// MigrationPolicy tunes the copy phase. The retry shape mirrors the
// binary wire client's reconnect backoff: exponential from BackoffMin,
// clamped at BackoffMax.
type MigrationPolicy struct {
	// ChunkSize is the number of shares per Ingest delivery (default
	// 256).
	ChunkSize int
	// Timeout bounds one delivery attempt (default 2s).
	Timeout time.Duration
	// Attempts is the total number of tries per delivery before the
	// move aborts (default 4).
	Attempts int
	// BackoffMin/BackoffMax shape the sleep between retries (defaults
	// 25ms and 2s). BackoffMin 0 retries immediately.
	BackoffMin, BackoffMax time.Duration
}

// DefaultMigrationPolicy returns the production policy.
func DefaultMigrationPolicy() MigrationPolicy {
	return MigrationPolicy{
		ChunkSize:  256,
		Timeout:    2 * time.Second,
		Attempts:   4,
		BackoffMin: 25 * time.Millisecond,
		BackoffMax: 2 * time.Second,
	}
}

func (p MigrationPolicy) normalized() MigrationPolicy {
	def := DefaultMigrationPolicy()
	if p.ChunkSize <= 0 {
		p.ChunkSize = def.ChunkSize
	}
	if p.Timeout <= 0 {
		p.Timeout = def.Timeout
	}
	if p.Attempts <= 0 {
		p.Attempts = def.Attempts
	}
	return p
}

// SimHooks re-enable known-bad behavior for the model checker, proving
// its churn checks are not vacuous. Must be nil outside the checker.
type SimHooks struct {
	// LoseCutover performs the buggy ancestor of the two-phase handoff:
	// the source drops its list but the routing flip is "lost", leaving
	// authority pointing at a node that no longer has the data.
	LoseCutover bool
}

// listMove is one in-flight copy phase. While it exists in Slot.moves,
// the source remains authoritative for the list.
type listMove struct {
	src, dst string
	epoch    Epoch

	// jmu guards dirty (source side) and lastSeq (target side). The
	// mutation path applies to the source and records dirty IDs under
	// jmu, so drain rounds observe a consistent order.
	jmu     sync.Mutex
	dirty   map[posting.GlobalID]struct{}
	lastSeq uint64

	// seq is the source-side delivery counter; only the (serialized)
	// migration engine touches it.
	seq uint64
}

func (mv *listMove) markDirty(gid posting.GlobalID) {
	if mv.dirty == nil {
		mv.dirty = make(map[posting.GlobalID]struct{})
	}
	mv.dirty[gid] = struct{}{}
}

func (mv *listMove) takeDirty() []posting.GlobalID {
	mv.jmu.Lock()
	defer mv.jmu.Unlock()
	if len(mv.dirty) == 0 {
		return nil
	}
	out := make([]posting.GlobalID, 0, len(mv.dirty))
	for gid := range mv.dirty {
		out = append(out, gid)
	}
	mv.dirty = nil
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// abortRec is a target cleanup that could not be delivered when a move
// aborted; Rebalance retries it before touching the list again.
type abortRec struct {
	target string
	epoch  Epoch
}

// localSink delivers transfers in-process — the default wire when all
// of a slot's nodes live in one process (tests, the load harness).
type localSink struct{ s *Slot }

func (l localSink) Ingest(_ context.Context, target string, ep Epoch, seq uint64, lid merging.ListID, shares []posting.EncryptedShare) error {
	return l.s.DeliverIngest(target, ep, seq, lid, shares)
}

func (l localSink) Remove(_ context.Context, target string, ep Epoch, seq uint64, lid merging.ListID, gids []posting.GlobalID) error {
	return l.s.DeliverRemove(target, ep, seq, lid, gids)
}

func (l localSink) Abort(_ context.Context, target string, ep Epoch, lid merging.ListID) error {
	return l.s.DeliverAbort(target, ep, lid)
}

// SetTransferSink replaces the migration wire (nil restores the
// in-process default). Call before membership operations.
func (s *Slot) SetTransferSink(sink TransferSink) {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	if sink == nil {
		sink = localSink{s}
	}
	s.sink = sink
}

// SetMigrationPolicy replaces the copy-phase tuning. Zero fields take
// their defaults; a zero BackoffMin retries immediately.
func (s *Slot) SetMigrationPolicy(p MigrationPolicy) {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	s.pol = p.normalized()
}

// SetSimHooks installs model-checker hooks. Must be nil outside tests.
func (s *Slot) SetSimHooks(h *SimHooks) {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	s.hooks = h
}

// DeliverIngest is the target-side endpoint of TransferSink.Ingest. It
// validates that the delivery matches the list's active move and its
// epoch, then upserts the shares. Deliveries at or below the last
// applied sequence number were already applied and are acknowledged
// without effect; anything else out of order is rejected as stale.
func (s *Slot) DeliverIngest(target string, ep Epoch, seq uint64, lid merging.ListID, shares []posting.EncryptedShare) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mv := s.moves[lid]
	if mv == nil || mv.dst != target || mv.epoch != ep {
		return fmt.Errorf("ingest of list %d on %s (epoch %d): %w", lid, target, ep, ErrStaleTransfer)
	}
	srv := s.nodes[target]
	if srv == nil {
		return fmt.Errorf("dht: migration target %s vanished", target)
	}
	mv.jmu.Lock()
	defer mv.jmu.Unlock()
	if seq <= mv.lastSeq {
		return nil // duplicate of an already-applied delivery: ack, don't re-apply
	}
	if seq != mv.lastSeq+1 {
		return fmt.Errorf("ingest of list %d on %s: got seq %d, want %d: %w",
			lid, target, seq, mv.lastSeq+1, ErrStaleTransfer)
	}
	srv.Store().IngestList(lid, shares)
	mv.lastSeq = seq
	return nil
}

// DeliverRemove is the target-side endpoint of TransferSink.Remove.
func (s *Slot) DeliverRemove(target string, ep Epoch, seq uint64, lid merging.ListID, gids []posting.GlobalID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mv := s.moves[lid]
	if mv == nil || mv.dst != target || mv.epoch != ep {
		return fmt.Errorf("remove on list %d on %s (epoch %d): %w", lid, target, ep, ErrStaleTransfer)
	}
	srv := s.nodes[target]
	if srv == nil {
		return fmt.Errorf("dht: migration target %s vanished", target)
	}
	mv.jmu.Lock()
	defer mv.jmu.Unlock()
	if seq <= mv.lastSeq {
		return nil
	}
	if seq != mv.lastSeq+1 {
		return fmt.Errorf("remove on list %d on %s: got seq %d, want %d: %w",
			lid, target, seq, mv.lastSeq+1, ErrStaleTransfer)
	}
	for _, gid := range gids {
		srv.Store().DeleteIf(lid, gid, nil)
	}
	mv.lastSeq = seq
	return nil
}

// DeliverAbort is the target-side endpoint of TransferSink.Abort: the
// target discards its partial copy of the list. It refuses to touch a
// list the target authoritatively owns (a delayed abort from an old,
// since-completed move must not destroy live data) and rejects aborts
// whose epoch does not match an active move of the list.
func (s *Slot) DeliverAbort(target string, ep Epoch, lid merging.ListID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if mv := s.moves[lid]; mv != nil && (mv.epoch != ep || mv.dst != target) {
		return fmt.Errorf("abort of list %d on %s (epoch %d): %w", lid, target, ep, ErrStaleTransfer)
	}
	if owner, err := s.ownerOfLocked(lid); err == nil && owner == target {
		return fmt.Errorf("abort of list %d: %s owns the list: %w", lid, target, ErrStaleTransfer)
	}
	srv := s.nodes[target]
	if srv == nil {
		return nil // target gone: nothing left to clean
	}
	srv.Store().DropList(lid)
	return nil
}

// transfer runs one delivery with the policy's timeout and bounded
// exponential retry. ErrStaleTransfer is permanent and not retried.
func (s *Slot) transfer(desc string, f func(ctx context.Context) error) error {
	pol := s.pol
	backoff := pol.BackoffMin
	var last error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > pol.BackoffMax {
				backoff = pol.BackoffMax
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), pol.Timeout)
		err := f(ctx)
		cancel()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrStaleTransfer) {
			return err
		}
		last = err
	}
	return fmt.Errorf("%s failed after %d attempts: %w", desc, pol.Attempts, last)
}

// runMove executes the two-phase handoff of one list. The caller holds
// migMu, so at most one move is in flight per slot and membership
// cannot change underneath it.
func (s *Slot) runMove(lid merging.ListID, src, dst string, ep Epoch) error {
	s.mu.Lock()
	srcSrv, dstSrv := s.nodes[src], s.nodes[dst]
	if srcSrv == nil || dstSrv == nil {
		s.mu.Unlock()
		return fmt.Errorf("dht: move of list %d %s -> %s: node missing", lid, src, dst)
	}
	mv := &listMove{src: src, dst: dst, epoch: ep}
	s.moves[lid] = mv
	delete(s.stale, lid) // the move record overrides routing; restored on abort
	snapshot := srcSrv.Store().List(lid)
	s.mu.Unlock()

	// Copy phase: stream the snapshot in chunks. The source keeps
	// serving; concurrent mutations dual-apply via the dirty set.
	for off := 0; off < len(snapshot); off += s.pol.ChunkSize {
		end := off + s.pol.ChunkSize
		if end > len(snapshot) {
			end = len(snapshot)
		}
		chunk := snapshot[off:end]
		mv.seq++
		seq := mv.seq
		err := s.transfer(fmt.Sprintf("dht: copying list %d to %s", lid, dst), func(ctx context.Context) error {
			return s.sink.Ingest(ctx, dst, ep, seq, lid, chunk)
		})
		if err != nil {
			return s.abortMove(lid, mv, err)
		}
	}

	// Drain + cutover. Lock-free drain rounds shrink the window; the
	// flip happens only when the dirty set is provably empty under the
	// exclusive routing lock.
	for round := 0; ; round++ {
		if round > 64 {
			return s.abortMove(lid, mv, errors.New("dirty set never drained under sustained writes"))
		}
		if err := s.drainRound(mv, srcSrv, lid); err != nil {
			return s.abortMove(lid, mv, err)
		}
		s.mu.Lock()
		mv.jmu.Lock()
		dirty := len(mv.dirty)
		mv.jmu.Unlock()
		if dirty > 0 {
			s.mu.Unlock()
			continue // lost the race to a concurrent mutation; drain again
		}
		if owner, err := s.ring.OwnerOfList(lid); err != nil || owner != dst {
			s.mu.Unlock()
			return s.abortMove(lid, mv, fmt.Errorf("ring owner changed under the move (now %q, err %v)", owner, err))
		}
		if s.hooks != nil && s.hooks.LoseCutover {
			// Bug shape for the model checker: the data moved, but the
			// authority flip is lost — routing still names the source,
			// which is about to drop its copy.
			delete(s.moves, lid)
			s.stale[lid] = src
			s.mu.Unlock()
			srcSrv.Store().DropList(lid)
			return nil
		}
		delete(s.moves, lid)
		delete(s.stale, lid)
		s.mu.Unlock()
		// The flip is done: reads and writes now route to dst. Dropping
		// the source's copy after the flip is safe — it is no longer
		// addressed by anything.
		srcSrv.Store().DropList(lid)
		return nil
	}
}

// drainRound reconciles the target with the source's current state of
// every ID mutated since the last round.
func (s *Slot) drainRound(mv *listMove, srcSrv *server.Server, lid merging.ListID) error {
	dirty := mv.takeDirty()
	if len(dirty) == 0 {
		return nil
	}
	current := make(map[posting.GlobalID]posting.EncryptedShare)
	for _, sh := range srcSrv.Store().List(lid) {
		current[sh.GlobalID] = sh
	}
	var upserts []posting.EncryptedShare
	var removes []posting.GlobalID
	for _, gid := range dirty {
		if sh, ok := current[gid]; ok {
			upserts = append(upserts, sh)
		} else {
			removes = append(removes, gid)
		}
	}
	if len(upserts) > 0 {
		mv.seq++
		seq := mv.seq
		if err := s.transfer(fmt.Sprintf("dht: draining list %d to %s", lid, mv.dst), func(ctx context.Context) error {
			return s.sink.Ingest(ctx, mv.dst, mv.epoch, seq, lid, upserts)
		}); err != nil {
			return err
		}
	}
	if len(removes) > 0 {
		mv.seq++
		seq := mv.seq
		if err := s.transfer(fmt.Sprintf("dht: draining deletes of list %d to %s", lid, mv.dst), func(ctx context.Context) error {
			return s.sink.Remove(ctx, mv.dst, mv.epoch, seq, lid, removes)
		}); err != nil {
			return err
		}
	}
	return nil
}

// abortMove cancels a move before cutover: the source retains
// authority via a routing override and the target is told to discard
// its partial copy. A failed cleanup is recorded for Rebalance.
func (s *Slot) abortMove(lid merging.ListID, mv *listMove, cause error) error {
	s.mu.Lock()
	delete(s.moves, lid)
	s.stale[lid] = mv.src
	s.mu.Unlock()
	if aerr := s.transfer(fmt.Sprintf("dht: cleaning list %d off %s", lid, mv.dst), func(ctx context.Context) error {
		return s.sink.Abort(ctx, mv.dst, mv.epoch, lid)
	}); aerr != nil && !errors.Is(aerr, ErrStaleTransfer) {
		s.mu.Lock()
		s.aborts[lid] = abortRec{target: mv.dst, epoch: mv.epoch}
		s.mu.Unlock()
		return fmt.Errorf("dht: move of list %d to %s aborted (%w); target cleanup pending: %v", lid, mv.dst, cause, aerr)
	}
	return fmt.Errorf("dht: move of list %d to %s aborted, %s retains authority: %w", lid, mv.dst, mv.src, cause)
}

// Rebalance retries whatever previous membership operations left
// behind: undelivered target cleanups, lists still parked on their old
// owners after an aborted move, and draining nodes that still hold
// data. It is safe to call at any time and under live traffic; call it
// until Pending reports zero to fully converge after transient faults.
func (s *Slot) Rebalance() error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	s.mu.Lock()
	s.epoch++
	ep := s.epoch
	s.mu.Unlock()
	return s.rebalanceLocked(ep)
}

// rebalanceLocked drives every misplaced list toward its ring owner,
// continuing past per-list failures and aggregating them with
// errors.Join. Caller holds migMu.
func (s *Slot) rebalanceLocked(ep Epoch) error {
	var errs []error

	// Drop overrides whose lists no longer exist (every element deleted
	// while the move was parked): there is nothing left to migrate and
	// the ring owner serves the empty list correctly. Lists with an
	// undelivered target cleanup are exempt — until the leftover copy
	// is confirmed gone, the override must keep routing away from it.
	s.mu.Lock()
	for lid, holder := range s.stale {
		if _, pend := s.aborts[lid]; pend {
			continue
		}
		srv := s.nodes[holder]
		if srv == nil {
			delete(s.stale, lid)
			continue
		}
		if _, has := srv.ListLengths()[lid]; !has {
			delete(s.stale, lid)
		}
	}
	s.mu.Unlock()

	// Unfinished target cleanups first: a list with a partial copy
	// stranded on some node must not start a new move until the
	// leftover is gone (it could otherwise alias a fresh transfer).
	s.mu.RLock()
	pending := make(map[merging.ListID]abortRec, len(s.aborts))
	for lid, rec := range s.aborts {
		pending[lid] = rec
	}
	s.mu.RUnlock()
	for _, lid := range sortedLids(pending) {
		rec := pending[lid]
		if err := s.transfer(fmt.Sprintf("dht: cleaning list %d off %s", lid, rec.target), func(ctx context.Context) error {
			return s.sink.Abort(ctx, rec.target, rec.epoch, lid)
		}); err != nil && !errors.Is(err, ErrStaleTransfer) {
			errs = append(errs, fmt.Errorf("dht: pending cleanup of list %d on %s: %w", lid, rec.target, err))
			continue
		}
		s.mu.Lock()
		delete(s.aborts, lid)
		s.mu.Unlock()
	}

	// Plan moves for every list not on its ring owner, skipping lists
	// whose cleanup is still pending.
	type movePlan struct {
		lid      merging.ListID
		src, dst string
	}
	var plans []movePlan
	s.mu.RLock()
	for name, srv := range s.nodes {
		for lid := range srv.ListLengths() {
			owner, err := s.ownerOfLocked(lid)
			if err != nil || owner != name {
				continue // not this node's authoritative data (cleanup leftover)
			}
			if _, dirty := s.aborts[lid]; dirty {
				continue
			}
			want, err := s.ring.OwnerOfList(lid)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			if want != name {
				plans = append(plans, movePlan{lid: lid, src: name, dst: want})
			}
		}
	}
	s.mu.RUnlock()
	sort.Slice(plans, func(i, j int) bool { return plans[i].lid < plans[j].lid })
	for _, p := range plans {
		if err := s.runMove(p.lid, p.src, p.dst, ep); err != nil {
			errs = append(errs, err)
		}
	}

	// Fully drained leaving nodes are gone for good.
	s.mu.Lock()
	for name := range s.draining {
		if len(s.nodes[name].ListLengths()) == 0 {
			delete(s.nodes, name)
			delete(s.draining, name)
		}
	}
	s.mu.Unlock()
	return errors.Join(errs...)
}

// Pending reports how much reconciliation work a future Rebalance has:
// lists still routed to their pre-move owners, undelivered target
// cleanups, and leaving nodes that still hold data. Zero means the
// slot's physical placement matches its ring exactly.
func (s *Slot) Pending() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.stale) + len(s.aborts) + len(s.draining)
}

// Epoch returns the slot's current membership epoch.
func (s *Slot) Epoch() Epoch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

func sortedLids(m map[merging.ListID]abortRec) []merging.ListID {
	out := make([]merging.ListID, 0, len(m))
	for lid := range m {
		out = append(out, lid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
