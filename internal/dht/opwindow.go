package dht

import (
	"sync"

	"zerber/internal/auth"
	"zerber/internal/transport"
)

// The slot needs its own mutation-stage dedup window, above the
// per-node windows, because node-level dedup is route-dependent: a
// node remembers the sub-batch it was sent, and after a membership
// change re-partitions the lists, an arbitrarily delayed redelivery of
// an old stage routes different sub-batches to different nodes. A node
// receiving elements of a stage it never saw re-applies them — and if
// the elements were deleted since, they come back from the dead as
// orphans. The slot sees every stage's full, partition-independent
// payload, so dedup here is stable across any topology change. The
// node windows stay: they still absorb redeliveries that race a single
// node's retries.
//
// Entries are keyed by (token, op, stage) like the server windows are
// keyed by caller: op IDs are unique per caller, not globally.

// slotOpCap bounds the slot window. It must be at least as deep as any
// realistic redelivery horizon; an evicted stage re-applies on
// redelivery, which converges unless a deletion of the same elements
// landed in between — the same documented hazard as the server window.
const slotOpCap = 1024

type slotOpKey struct {
	tok   auth.Token
	id    uint64
	stage uint8
}

// slotOpWindow is a bounded FIFO of applied stages with their payload
// checksums (see transport.PayloadSum for skip-vs-reapply semantics).
type slotOpWindow struct {
	mu   sync.Mutex
	sums map[slotOpKey]uint32
	fifo []slotOpKey
	next int
}

func newSlotOpWindow() *slotOpWindow {
	return &slotOpWindow{sums: make(map[slotOpKey]uint32)}
}

func (w *slotOpWindow) seen(tok auth.Token, op transport.OpID, sum uint32) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	prev, ok := w.sums[slotOpKey{tok, op.ID, op.Stage}]
	return ok && prev == sum
}

func (w *slotOpWindow) record(tok auth.Token, op transport.OpID, sum uint32) {
	w.mu.Lock()
	defer w.mu.Unlock()
	key := slotOpKey{tok, op.ID, op.Stage}
	if _, ok := w.sums[key]; ok {
		w.sums[key] = sum // payload changed: update in place
		return
	}
	if len(w.fifo) < slotOpCap {
		w.fifo = append(w.fifo, key)
	} else {
		delete(w.sums, w.fifo[w.next])
		w.fifo[w.next] = key
		w.next = (w.next + 1) % slotOpCap
	}
	w.sums[key] = sum
}
