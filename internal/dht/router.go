package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"zerber/internal/auth"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/posting"
	"zerber/internal/server"
	"zerber/internal/transport"
)

// Slot is one share slot: the set of physical nodes that jointly store
// the shares evaluated at one public x-coordinate, partitioned by a
// consistent-hashing ring. Slot implements transport.API, so a Zerber
// peer or client can use a Slot wherever it would use a monolithic
// index server.
type Slot struct {
	x    field.Element
	ring *Ring

	mu    sync.RWMutex
	nodes map[string]*server.Server
}

var _ transport.API = (*Slot)(nil)

// NewSlot creates an empty slot for the given x-coordinate.
func NewSlot(x field.Element, vnodesPerNode int) (*Slot, error) {
	if x == 0 {
		return nil, errors.New("dht: x-coordinate 0 is reserved for the secret")
	}
	return &Slot{
		x:     x,
		ring:  NewRing(vnodesPerNode),
		nodes: make(map[string]*server.Server),
	}, nil
}

// AddNode joins a physical node to the slot. The node's server must be
// configured with the slot's x-coordinate (shares are bound to x, not to
// boxes). Lists the new node now owns are migrated from their previous
// owners.
func (s *Slot) AddNode(name string, srv *server.Server) error {
	if srv.XCoord() != s.x {
		return fmt.Errorf("dht: node %s has x=%d, slot requires x=%d", name, srv.XCoord(), s.x)
	}
	s.mu.Lock()
	if _, dup := s.nodes[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("dht: node %s already in slot", name)
	}
	s.nodes[name] = srv
	s.ring.AddNode(name)
	s.mu.Unlock()
	return s.rebalance()
}

// RemoveNode leaves a node from the slot, first migrating its lists to
// the remaining owners. Removing the last node fails: its data would be
// lost.
func (s *Slot) RemoveNode(name string) error {
	s.mu.Lock()
	leaving, ok := s.nodes[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("dht: node %s not in slot", name)
	}
	if len(s.nodes) == 1 {
		s.mu.Unlock()
		return errors.New("dht: cannot remove the last node of a slot")
	}
	delete(s.nodes, name)
	s.ring.RemoveNode(name)
	s.mu.Unlock()

	// Hand the leaving node's shares to their new owners.
	return s.migrateFrom(leaving)
}

// rebalance moves every stored list to its current ring owner; called
// after membership changes.
func (s *Slot) rebalance() error {
	s.mu.RLock()
	nodes := make(map[string]*server.Server, len(s.nodes))
	for n, srv := range s.nodes {
		nodes[n] = srv
	}
	s.mu.RUnlock()
	for name, srv := range nodes {
		if err := s.migrateMisplaced(name, srv); err != nil {
			return err
		}
	}
	return nil
}

// migrateMisplaced moves lists that no longer belong on srv.
func (s *Slot) migrateMisplaced(name string, srv *server.Server) error {
	for lid := range srv.ListLengths() {
		owner, err := s.ring.OwnerOfList(lid)
		if err != nil {
			return err
		}
		if owner == name {
			continue
		}
		if err := s.moveList(srv, owner, lid); err != nil {
			return err
		}
	}
	return nil
}

// migrateFrom moves all lists off a (removed) node.
func (s *Slot) migrateFrom(leaving *server.Server) error {
	for lid := range leaving.ListLengths() {
		owner, err := s.ring.OwnerOfList(lid)
		if err != nil {
			return err
		}
		if err := s.moveList(leaving, owner, lid); err != nil {
			return err
		}
	}
	return nil
}

// moveList transplants one merged posting list between nodes through the
// storage engines directly (node-to-node transfer inside one slot; the
// shares stay encrypted throughout — migration never sees plaintext).
func (s *Slot) moveList(from *server.Server, toName string, lid merging.ListID) error {
	s.mu.RLock()
	to := s.nodes[toName]
	s.mu.RUnlock()
	if to == nil {
		return fmt.Errorf("dht: migration target %s vanished", toName)
	}
	to.Store().IngestList(lid, from.Store().List(lid))
	from.Store().DropList(lid)
	return nil
}

// XCoord returns the slot's public x-coordinate.
func (s *Slot) XCoord() field.Element { return s.x }

// Insert routes each op to the node owning its posting list.
func (s *Slot) Insert(ctx context.Context, tok auth.Token, ops []transport.InsertOp) error {
	grouped, err := s.groupInsert(ops)
	if err != nil {
		return err
	}
	for name, nodeOps := range grouped {
		s.mu.RLock()
		srv := s.nodes[name]
		s.mu.RUnlock()
		if srv == nil {
			return fmt.Errorf("dht: owner %s vanished", name)
		}
		if err := srv.Insert(ctx, tok, nodeOps); err != nil {
			return err
		}
	}
	return nil
}

// Delete routes each op to the node owning its posting list.
func (s *Slot) Delete(ctx context.Context, tok auth.Token, ops []transport.DeleteOp) error {
	grouped := make(map[string][]transport.DeleteOp)
	for _, op := range ops {
		owner, err := s.ring.OwnerOfList(op.List)
		if err != nil {
			return err
		}
		grouped[owner] = append(grouped[owner], op)
	}
	for name, nodeOps := range grouped {
		s.mu.RLock()
		srv := s.nodes[name]
		s.mu.RUnlock()
		if srv == nil {
			return fmt.Errorf("dht: owner %s vanished", name)
		}
		if err := srv.Delete(ctx, tok, nodeOps); err != nil {
			return err
		}
	}
	return nil
}

// Apply routes one mutation stage to the nodes owning its posting
// lists, forwarding the op ID so each node deduplicates its own part of
// a redelivered stage. If ring membership changes between an attempt and
// its retry, a node can receive the same op ID with a different payload
// slice; the nodes' payload checksums catch that and re-apply, which
// converges because inserts upsert and Apply's deletes are conditional.
func (s *Slot) Apply(ctx context.Context, tok auth.Token, op transport.OpID, inserts []transport.InsertOp, deletes []transport.DeleteOp) error {
	groupedIns, err := s.groupInsert(inserts)
	if err != nil {
		return err
	}
	groupedDels := make(map[string][]transport.DeleteOp)
	owners := make(map[string]struct{}, len(groupedIns))
	for name := range groupedIns {
		owners[name] = struct{}{}
	}
	for _, del := range deletes {
		owner, err := s.ring.OwnerOfList(del.List)
		if err != nil {
			return err
		}
		groupedDels[owner] = append(groupedDels[owner], del)
		owners[owner] = struct{}{}
	}
	for name := range owners {
		s.mu.RLock()
		srv := s.nodes[name]
		s.mu.RUnlock()
		if srv == nil {
			return fmt.Errorf("dht: owner %s vanished", name)
		}
		if err := srv.Apply(ctx, tok, op, groupedIns[name], groupedDels[name]); err != nil {
			return err
		}
	}
	return nil
}

// GetPostingLists fans the request to the owners of the requested lists
// and merges the responses.
func (s *Slot) GetPostingLists(ctx context.Context, tok auth.Token, lists []merging.ListID) (map[merging.ListID][]posting.EncryptedShare, error) {
	grouped := make(map[string][]merging.ListID)
	for _, lid := range lists {
		owner, err := s.ring.OwnerOfList(lid)
		if err != nil {
			return nil, err
		}
		grouped[owner] = append(grouped[owner], lid)
	}
	out := make(map[merging.ListID][]posting.EncryptedShare, len(lists))
	for name, nodeLists := range grouped {
		s.mu.RLock()
		srv := s.nodes[name]
		s.mu.RUnlock()
		if srv == nil {
			return nil, fmt.Errorf("dht: owner %s vanished", name)
		}
		part, err := srv.GetPostingLists(ctx, tok, nodeLists)
		if err != nil {
			return nil, err
		}
		for lid, shares := range part {
			out[lid] = shares
		}
	}
	return out, nil
}

func (s *Slot) groupInsert(ops []transport.InsertOp) (map[string][]transport.InsertOp, error) {
	grouped := make(map[string][]transport.InsertOp)
	for _, op := range ops {
		owner, err := s.ring.OwnerOfList(op.List)
		if err != nil {
			return nil, err
		}
		grouped[owner] = append(grouped[owner], op)
	}
	return grouped, nil
}

// NumNodes returns the number of physical nodes in the slot.
func (s *Slot) NumNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// Node returns a physical node by name (for instrumentation).
func (s *Slot) Node(name string) (*server.Server, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	srv, ok := s.nodes[name]
	return srv, ok
}

// ListDistribution returns, per node, how many lists it currently holds.
func (s *Slot) ListDistribution() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int, len(s.nodes))
	for name, srv := range s.nodes {
		out[name] = len(srv.ListLengths())
	}
	return out
}
