package dht

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"zerber/internal/auth"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/posting"
	"zerber/internal/server"
	"zerber/internal/transport"
)

// Slot is one share slot: the set of physical nodes that jointly store
// the shares evaluated at one public x-coordinate, partitioned by a
// consistent-hashing ring. Slot implements transport.API, so a Zerber
// peer or client can use a Slot wherever it would use a monolithic
// index server.
//
// Membership is an online operation: AddNode and RemoveNode migrate
// lists through the two-phase handoff in migrate.go while the slot
// keeps serving. Authority over a list moves only at cutover — until
// then (and after an aborted move) routing overrides keep reads and
// writes on the node that actually holds the data, so a dead migration
// target degrades the slot to "some lists not yet rebalanced"
// (Pending > 0, retried by Rebalance) instead of wedging it.
type Slot struct {
	x field.Element

	// ring holds the *desired* placement. Actual routing consults the
	// overrides below first: authority follows data, not the ring,
	// until each list's cutover.
	ring *Ring

	// migMu serializes membership operations (AddNode, RemoveNode,
	// Rebalance): at most one migration engine runs per slot.
	migMu sync.Mutex
	pol   MigrationPolicy
	sink  TransferSink
	hooks *SimHooks

	// mu guards the routing state. Every serving call holds the read
	// lock across its routing decision and node dispatch, so the
	// migration engine's state transitions (move start, cutover,
	// abort) fence all in-flight calls: a mutation is either in the
	// copy snapshot or in the move's dirty set, never lost.
	mu       sync.RWMutex
	nodes    map[string]*server.Server
	draining map[string]bool // still serving & in nodes, but off the ring
	epoch    Epoch
	moves    map[merging.ListID]*listMove // in-flight copy: source is authoritative
	stale    map[merging.ListID]string    // aborted/unfinished move: authority stays here
	aborts   map[merging.ListID]abortRec  // undelivered target cleanups

	// ops dedups mutation stages above the per-node windows, which stop
	// working across topology changes (see opwindow.go).
	ops *slotOpWindow
}

var _ transport.API = (*Slot)(nil)

// NewSlot creates an empty slot for the given x-coordinate.
func NewSlot(x field.Element, vnodesPerNode int) (*Slot, error) {
	if x == 0 {
		return nil, errors.New("dht: x-coordinate 0 is reserved for the secret")
	}
	s := &Slot{
		x:        x,
		ring:     NewRing(vnodesPerNode),
		pol:      DefaultMigrationPolicy(),
		nodes:    make(map[string]*server.Server),
		draining: make(map[string]bool),
		moves:    make(map[merging.ListID]*listMove),
		stale:    make(map[merging.ListID]string),
		aborts:   make(map[merging.ListID]abortRec),
		ops:      newSlotOpWindow(),
	}
	s.sink = localSink{s}
	return s, nil
}

// ownerOfLocked resolves which node is authoritative for a list right
// now: the source of an in-flight move, the recorded holder after an
// aborted move, or the ring owner. Caller holds mu (read or write).
func (s *Slot) ownerOfLocked(lid merging.ListID) (string, error) {
	if mv, ok := s.moves[lid]; ok {
		return mv.src, nil
	}
	if name, ok := s.stale[lid]; ok {
		return name, nil
	}
	return s.ring.OwnerOfList(lid)
}

// AddNode joins a physical node to the slot and migrates the lists it
// now owns from their previous holders, online. The node serves its
// lists as each cutover lands. A per-list migration failure leaves
// that list on its previous owner (retried by Rebalance); the
// aggregated errors are returned but the node is a member regardless.
// The node's server must be configured with the slot's x-coordinate
// (shares are bound to x, not to boxes).
func (s *Slot) AddNode(name string, srv *server.Server) error {
	if srv.XCoord() != s.x {
		return fmt.Errorf("dht: node %s has x=%d, slot requires x=%d", name, srv.XCoord(), s.x)
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()
	s.mu.Lock()
	if _, dup := s.nodes[name]; dup {
		s.mu.Unlock()
		if s.draining[name] {
			return fmt.Errorf("dht: node %s is still draining out of the slot", name)
		}
		return fmt.Errorf("dht: node %s already in slot", name)
	}
	s.nodes[name] = srv
	held := s.heldAuthorityLocked()
	s.ring.AddNode(name)
	s.pinAuthorityLocked(held)
	s.epoch++
	ep := s.epoch
	s.mu.Unlock()
	return s.rebalanceLocked(ep)
}

// heldAuthorityLocked maps every stored list to the node currently
// authoritative for it. Caller holds mu.
func (s *Slot) heldAuthorityLocked() map[merging.ListID]string {
	out := make(map[merging.ListID]string)
	for name, srv := range s.nodes {
		for lid := range srv.ListLengths() {
			if owner, err := s.ownerOfLocked(lid); err == nil && owner == name {
				out[lid] = name
			}
		}
	}
	return out
}

// pinAuthorityLocked records routing overrides after a ring change so
// that authority stays with the data: a list whose desired owner moved
// keeps routing to its current holder until its cutover, and overrides
// that became redundant are dropped. Caller holds mu.
func (s *Slot) pinAuthorityLocked(held map[merging.ListID]string) {
	for lid, holder := range held {
		want, err := s.ring.OwnerOfList(lid)
		if err != nil {
			continue
		}
		if want != holder {
			s.stale[lid] = holder
		} else {
			delete(s.stale, lid)
		}
	}
}

// RemoveNode takes a node off the ring and drains its lists to the
// remaining owners, online. The node keeps serving each list until
// that list's cutover. If any move fails, the node stays in the slot
// in a draining state — still authoritative for what it holds — and a
// later Rebalance (or RemoveNode again) finishes the job; the
// aggregated errors are returned. Removing the last ring node fails:
// its data would have nowhere to go.
func (s *Slot) RemoveNode(name string) error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	s.mu.Lock()
	if _, ok := s.nodes[name]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("dht: node %s not in slot", name)
	}
	if !s.draining[name] {
		if s.ring.NumNodes() <= 1 {
			s.mu.Unlock()
			return errors.New("dht: cannot remove the last node of a slot")
		}
		// Pin authority before the ring forgets the node: each list the
		// node holds stays routed to it until its individual cutover.
		held := s.heldAuthorityLocked()
		s.ring.RemoveNode(name)
		s.draining[name] = true
		s.pinAuthorityLocked(held)
		s.epoch++
	}
	ep := s.epoch
	s.mu.Unlock()
	return s.rebalanceLocked(ep)
}

// XCoord returns the slot's public x-coordinate.
func (s *Slot) XCoord() field.Element { return s.x }

// opParts is one dispatch group of a routed mutation.
type opParts struct {
	ins  []transport.InsertOp
	dels []transport.DeleteOp
}

// routeLocked splits a mutation by authoritative destination: settled
// lists group per node, lists under an active copy group per move (the
// source applies them and the move's dirty set records the touched
// IDs). Caller holds mu.RLock.
func (s *Slot) routeLocked(inserts []transport.InsertOp, deletes []transport.DeleteOp) (map[string]*opParts, map[merging.ListID]*opParts, error) {
	normal := make(map[string]*opParts)
	moving := make(map[merging.ListID]*opParts)
	route := func(lid merging.ListID) (*opParts, error) {
		if _, ok := s.moves[lid]; ok {
			p := moving[lid]
			if p == nil {
				p = &opParts{}
				moving[lid] = p
			}
			return p, nil
		}
		owner, err := s.ownerOfLocked(lid)
		if err != nil {
			return nil, err
		}
		p := normal[owner]
		if p == nil {
			p = &opParts{}
			normal[owner] = p
		}
		return p, nil
	}
	for _, op := range inserts {
		p, err := route(op.List)
		if err != nil {
			return nil, nil, err
		}
		p.ins = append(p.ins, op)
	}
	for _, op := range deletes {
		p, err := route(op.List)
		if err != nil {
			return nil, nil, err
		}
		p.dels = append(p.dels, op)
	}
	return normal, moving, nil
}

// applyMoving dispatches one migrating list's part to the move's
// source and records the touched IDs in the dirty set, atomically per
// list (jmu), so drain rounds replay a consistent order.
func (s *Slot) applyMoving(lid merging.ListID, p *opParts, call func(srv *server.Server) error) error {
	mv := s.moves[lid]
	srv := s.nodes[mv.src]
	if srv == nil {
		return fmt.Errorf("dht: owner %s vanished", mv.src)
	}
	mv.jmu.Lock()
	defer mv.jmu.Unlock()
	if err := call(srv); err != nil {
		return err
	}
	for _, op := range p.ins {
		mv.markDirty(op.Share.GlobalID)
	}
	for _, op := range p.dels {
		mv.markDirty(op.ID)
	}
	return nil
}

// Insert routes each op to the node authoritative for its posting list.
func (s *Slot) Insert(ctx context.Context, tok auth.Token, ops []transport.InsertOp) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	normal, moving, err := s.routeLocked(ops, nil)
	if err != nil {
		return err
	}
	for name, p := range normal {
		srv := s.nodes[name]
		if srv == nil {
			return fmt.Errorf("dht: owner %s vanished", name)
		}
		if err := srv.Insert(ctx, tok, p.ins); err != nil {
			return err
		}
	}
	for lid, p := range moving {
		part := p
		if err := s.applyMoving(lid, p, func(srv *server.Server) error {
			return srv.Insert(ctx, tok, part.ins)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Delete routes each op to the node authoritative for its posting list.
func (s *Slot) Delete(ctx context.Context, tok auth.Token, ops []transport.DeleteOp) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	normal, moving, err := s.routeLocked(nil, ops)
	if err != nil {
		return err
	}
	for name, p := range normal {
		srv := s.nodes[name]
		if srv == nil {
			return fmt.Errorf("dht: owner %s vanished", name)
		}
		if err := srv.Delete(ctx, tok, p.dels); err != nil {
			return err
		}
	}
	for lid, p := range moving {
		part := p
		if err := s.applyMoving(lid, p, func(srv *server.Server) error {
			return srv.Delete(ctx, tok, part.dels)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Apply routes one mutation stage to the nodes authoritative for its
// posting lists. The slot deduplicates redelivered stages itself,
// before routing: node-level dedup remembers sub-batches, which change
// whenever membership re-partitions the lists, so an arbitrarily
// delayed redelivery after a topology change would reach nodes that
// never saw the stage and re-apply it — resurrecting elements deleted
// in between. The slot's window keys on the full, partition-independent
// payload, so a redelivery is recognized under any topology. The op ID
// is still forwarded: the node windows absorb redeliveries that race a
// single node's retries within one routing generation.
func (s *Slot) Apply(ctx context.Context, tok auth.Token, op transport.OpID, inserts []transport.InsertOp, deletes []transport.DeleteOp) error {
	var sum uint32
	if !op.IsZero() {
		sum = transport.PayloadSum(inserts, deletes)
		if s.ops.seen(tok, op, sum) {
			return nil
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	normal, moving, err := s.routeLocked(inserts, deletes)
	if err != nil {
		return err
	}
	for name, p := range normal {
		srv := s.nodes[name]
		if srv == nil {
			return fmt.Errorf("dht: owner %s vanished", name)
		}
		if err := srv.Apply(ctx, tok, op, p.ins, p.dels); err != nil {
			return err
		}
	}
	for lid, p := range moving {
		part := p
		if err := s.applyMoving(lid, p, func(srv *server.Server) error {
			return srv.Apply(ctx, tok, op, part.ins, part.dels)
		}); err != nil {
			return err
		}
	}
	// Recorded only on full success: a partial failure must re-apply on
	// retry, which converges (upserts + conditional deletes).
	if !op.IsZero() {
		s.ops.record(tok, op, sum)
	}
	return nil
}

// GetPostingLists fans the request to the authoritative holders of the
// requested lists and merges the responses. Reads route like writes:
// to the source during a copy, to the recorded holder after an aborted
// move — a half-ingested target copy is never read.
func (s *Slot) GetPostingLists(ctx context.Context, tok auth.Token, lists []merging.ListID) (map[merging.ListID][]posting.EncryptedShare, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	grouped := make(map[string][]merging.ListID)
	for _, lid := range lists {
		owner, err := s.ownerOfLocked(lid)
		if err != nil {
			return nil, err
		}
		grouped[owner] = append(grouped[owner], lid)
	}
	out := make(map[merging.ListID][]posting.EncryptedShare, len(lists))
	for name, nodeLists := range grouped {
		srv := s.nodes[name]
		if srv == nil {
			return nil, fmt.Errorf("dht: owner %s vanished", name)
		}
		part, err := srv.GetPostingLists(ctx, tok, nodeLists)
		if err != nil {
			return nil, err
		}
		for lid, shares := range part {
			out[lid] = shares
		}
	}
	return out, nil
}

// GetPostingBlocks routes a paged lookup to the single authoritative
// holder of the list, under the same mid-migration routing rules as
// GetPostingLists: the source serves during a copy, the recorded holder
// after an aborted move, so a page never comes from a half-ingested
// target copy.
func (s *Slot) GetPostingBlocks(ctx context.Context, tok auth.Token, list merging.ListID, from, n int) (transport.BlockPage, error) {
	s.mu.RLock()
	owner, err := s.ownerOfLocked(list)
	if err != nil {
		s.mu.RUnlock()
		return transport.BlockPage{}, err
	}
	srv := s.nodes[owner]
	s.mu.RUnlock()
	if srv == nil {
		return transport.BlockPage{}, fmt.Errorf("dht: owner %s vanished", owner)
	}
	return srv.GetPostingBlocks(ctx, tok, list, from, n)
}

// NumNodes returns the number of physical nodes serving the slot
// (including nodes still draining out).
func (s *Slot) NumNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// Node returns a physical node by name (for instrumentation).
func (s *Slot) Node(name string) (*server.Server, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	srv, ok := s.nodes[name]
	return srv, ok
}

// NodeNames returns the sorted names of every node serving the slot,
// including nodes still draining out.
func (s *Slot) NodeNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.nodes))
	for name := range s.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RingOwnerOfList returns the ring's desired owner of a list — where
// the list will live once all pending migration work has converged.
func (s *Slot) RingOwnerOfList(lid merging.ListID) (string, error) {
	return s.ring.OwnerOfList(lid)
}

// RingNodes returns the sorted names of the ring members — the nodes
// new lists hash to. Draining nodes are excluded.
func (s *Slot) RingNodes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Nodes()
}

// ListDistribution returns, per node, how many lists it currently holds.
func (s *Slot) ListDistribution() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int, len(s.nodes))
	for name, srv := range s.nodes {
		out[name] = len(srv.ListLengths())
	}
	return out
}
