package dht_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zerber/internal/auth"
	"zerber/internal/dht"
	"zerber/internal/merging"
	"zerber/internal/posting"
	"zerber/internal/server"
	"zerber/internal/store"
	"zerber/internal/transport"
)

// churnSlot builds one slot with nNodes nodes (n0..n{nNodes-1}) and an
// authorized token for group 1.
func churnSlot(t *testing.T, nNodes int) (*dht.Slot, *auth.Service, auth.Token) {
	t.Helper()
	svc, err := auth.NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	groups := auth.NewGroupTable()
	groups.Add("alice", 1)
	slot, err := dht.NewSlot(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nNodes; n++ {
		srv := server.New(server.Config{
			Name: fmt.Sprintf("node%d", n), X: 1, Auth: svc, Groups: groups,
			Store: store.New(0),
		})
		if err := slot.AddNode(fmt.Sprintf("n%d", n), srv); err != nil {
			t.Fatal(err)
		}
	}
	return slot, svc, svc.Issue("alice")
}

func churnNodeServer(t *testing.T, svc *auth.Service, name string) *server.Server {
	t.Helper()
	groups := auth.NewGroupTable()
	groups.Add("alice", 1)
	return server.New(server.Config{Name: name, X: 1, Auth: svc, Groups: groups, Store: store.New(0)})
}

// checkSlotSettled drives the slot to Pending()==0 and verifies every
// list resides exactly on its ring owner with no element duplicated or
// lost relative to want (gid -> share value present).
func checkSlotSettled(t *testing.T, slot *dht.Slot, want map[posting.GlobalID]bool) {
	t.Helper()
	for attempt := 0; slot.Pending() > 0; attempt++ {
		if attempt > 50 {
			t.Fatalf("slot never settled: %d pending after %d rebalances", slot.Pending(), attempt)
		}
		_ = slot.Rebalance()
	}
	seen := make(map[posting.GlobalID]string)
	for _, name := range slot.NodeNames() {
		srv, ok := slot.Node(name)
		if !ok {
			t.Fatalf("node %s vanished", name)
		}
		if err := store.CheckInvariants(srv.Store()); err != nil {
			t.Fatalf("node %s: %v", name, err)
		}
		for lid := range srv.ListLengths() {
			ringOwner, err := slot.RingOwnerOfList(lid)
			if err != nil {
				t.Fatal(err)
			}
			if ringOwner != name {
				t.Errorf("list %d on node %s, ring owner %s (settled slot must match the ring)", lid, name, ringOwner)
			}
			for _, sh := range srv.Store().List(lid) {
				if prev, dup := seen[sh.GlobalID]; dup {
					t.Fatalf("element %d stored on both %s and %s", sh.GlobalID, prev, name)
				}
				seen[sh.GlobalID] = name
				if !want[sh.GlobalID] {
					t.Fatalf("orphaned element %d on %s", sh.GlobalID, name)
				}
			}
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("slot holds %d elements, want %d", len(seen), len(want))
	}
}

// TestSlotChurnRace hammers AddNode/RemoveNode against in-flight
// Insert/Apply/Delete/GetPostingLists on a live slot. Runs under
// `make race`; correctness of the final state is checked exactly.
func TestSlotChurnRace(t *testing.T) {
	rounds, writers := 12, 3
	if testing.Short() {
		rounds = 5
	}
	slot, svc, tok := churnSlot(t, 2)
	ctx := context.Background()

	var stop atomic.Bool
	var nextGid atomic.Uint64
	var mu sync.Mutex
	live := make(map[posting.GlobalID]merging.ListID) // gids the writers committed

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			var opID uint64
			for !stop.Load() {
				lid := merging.ListID(rng.Intn(24))
				gid := posting.GlobalID(nextGid.Add(1))
				opID++
				ins := []transport.InsertOp{{List: lid, Share: posting.EncryptedShare{GlobalID: gid, Group: 1, Y: 42}}}
				op := transport.OpID{ID: uint64(w)<<32 | opID, Stage: transport.StageInsert}
				if err := slot.Apply(ctx, tok, op, ins, nil); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				mu.Lock()
				live[gid] = lid
				mu.Unlock()
				if rng.Intn(4) == 0 {
					// Delete a random committed element.
					mu.Lock()
					var victim posting.GlobalID
					var vlid merging.ListID
					for g, l := range live {
						victim, vlid = g, l
						break
					}
					if victim != 0 {
						delete(live, victim)
					}
					mu.Unlock()
					if victim != 0 {
						dels := []transport.DeleteOp{{List: vlid, ID: victim}}
						if err := slot.Delete(ctx, tok, dels); err != nil {
							t.Errorf("delete: %v", err)
							return
						}
					}
				}
				if rng.Intn(3) == 0 {
					if _, err := slot.GetPostingLists(ctx, tok, []merging.ListID{lid}); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Membership churn in the foreground: join extra nodes, remove
	// them again, interleaved with the writers above.
	for r := 0; r < rounds; r++ {
		name := fmt.Sprintf("x%d", r)
		if err := slot.AddNode(name, churnNodeServer(t, svc, name)); err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
		if r%2 == 1 {
			if err := slot.RemoveNode(fmt.Sprintf("x%d", r-1)); err != nil {
				t.Fatalf("leave x%d: %v", r-1, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	want := make(map[posting.GlobalID]bool, len(live))
	for gid := range live {
		want[gid] = true
	}
	checkSlotSettled(t, slot, want)
}

// flakySink fails migration traffic on demand: Ingest deliveries after
// the fuse, and optionally Abort cleanups too.
type flakySink struct {
	slot       *dht.Slot
	ingestFuse int32 // fail Ingest once this many deliveries happened
	failAbort  bool
}

var errSinkDead = errors.New("sink: migration target unreachable")

func (f *flakySink) Ingest(_ context.Context, target string, ep dht.Epoch, seq uint64, lid merging.ListID, shares []posting.EncryptedShare) error {
	if atomic.AddInt32(&f.ingestFuse, -1) < 0 {
		return errSinkDead
	}
	return f.slot.DeliverIngest(target, ep, seq, lid, shares)
}

func (f *flakySink) Remove(_ context.Context, target string, ep dht.Epoch, seq uint64, lid merging.ListID, gids []posting.GlobalID) error {
	return f.slot.DeliverRemove(target, ep, seq, lid, gids)
}

func (f *flakySink) Abort(_ context.Context, target string, ep dht.Epoch, lid merging.ListID) error {
	if f.failAbort {
		return errSinkDead
	}
	return f.slot.DeliverAbort(target, ep, lid)
}

// preload stuffs lists 0..lists-1 with count shares each through the
// trusted ingest primitive and returns the full gid set.
func preload(slot *dht.Slot, node string, lists, count int) map[posting.GlobalID]bool {
	srv, _ := slot.Node(node)
	want := make(map[posting.GlobalID]bool)
	gid := posting.GlobalID(0)
	for l := 0; l < lists; l++ {
		shares := make([]posting.EncryptedShare, count)
		for i := range shares {
			gid++
			shares[i] = posting.EncryptedShare{GlobalID: gid, Group: 1, Y: 7}
			want[gid] = true
		}
		srv.Store().IngestList(merging.ListID(l), shares)
	}
	return want
}

// TestCrashMidCopy kills the migration target partway through a copy:
// the move must abort with the source still authoritative, the target
// holding no half-ingested list, and the slot still serving every
// element. A later Rebalance through a healed sink converges.
func TestCrashMidCopy(t *testing.T) {
	slot, svc, tok := churnSlot(t, 1)
	want := preload(slot, "n0", 12, 10)
	slot.SetMigrationPolicy(dht.MigrationPolicy{ChunkSize: 4, Attempts: 2, Timeout: time.Second})

	sink := &flakySink{slot: slot, ingestFuse: 4}
	slot.SetTransferSink(sink)
	err := slot.AddNode("n1", churnNodeServer(t, svc, "n1"))
	if err == nil {
		t.Fatal("join with a dying target must report aborted moves")
	}
	if slot.Pending() == 0 {
		t.Fatal("aborted moves must leave pending work")
	}

	// Target holds no half-ingested list: every aborted move cleaned up.
	n1, _ := slot.Node("n1")
	if got := n1.TotalElements(); got != 0 {
		// Fully cut-over lists are allowed on n1; partially copied ones
		// are not. Verify every list on n1 is complete and ring-owned.
		for lid := range n1.ListLengths() {
			owner, _ := slot.RingOwnerOfList(lid)
			if owner != "n1" {
				t.Fatalf("n1 holds list %d it does not own", lid)
			}
			if len(n1.Store().List(lid)) != 10 {
				t.Fatalf("n1 holds %d of 10 shares of list %d — half-ingested list survived the abort", len(n1.Store().List(lid)), lid)
			}
		}
	}

	// The slot still serves everything, routed to wherever authority is.
	lists := make([]merging.ListID, 12)
	for i := range lists {
		lists[i] = merging.ListID(i)
	}
	got, err := slot.GetPostingLists(context.Background(), tok, lists)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, shares := range got {
		served += len(shares)
	}
	if served != len(want) {
		t.Fatalf("slot serves %d elements mid-degradation, want %d", served, len(want))
	}

	// Heal the wire; Rebalance converges and n1 gets its lists.
	slot.SetTransferSink(nil)
	checkSlotSettled(t, slot, want)
	if n1.TotalElements() == 0 {
		t.Fatal("after rebalance the new node should own some lists")
	}
}

// TestAbortCleanupPending covers the double-failure path: the target
// dies mid-copy and the cleanup cannot be delivered either. The
// partial copy is remembered and cleaned by the next Rebalance; until
// then reads never see the half-ingested data.
func TestAbortCleanupPending(t *testing.T) {
	slot, svc, tok := churnSlot(t, 1)
	want := preload(slot, "n0", 8, 6)
	slot.SetMigrationPolicy(dht.MigrationPolicy{ChunkSize: 2, Attempts: 1, Timeout: time.Second})

	sink := &flakySink{slot: slot, ingestFuse: 1, failAbort: true}
	slot.SetTransferSink(sink)
	if err := slot.AddNode("n1", churnNodeServer(t, svc, "n1")); err == nil {
		t.Fatal("join must report the stranded cleanup")
	}
	if slot.Pending() == 0 {
		t.Fatal("stranded cleanup must count as pending")
	}

	// Reads must not see the stranded partial copy twice.
	lists := make([]merging.ListID, 8)
	for i := range lists {
		lists[i] = merging.ListID(i)
	}
	got, err := slot.GetPostingLists(context.Background(), tok, lists)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, shares := range got {
		served += len(shares)
	}
	if served != len(want) {
		t.Fatalf("slot serves %d elements with a stranded copy, want %d", served, len(want))
	}

	slot.SetTransferSink(nil)
	checkSlotSettled(t, slot, want)
}

// TestLoseCutoverHook proves the two-phase handoff is load-bearing:
// with the lost-cutover bug shape enabled, a join makes data
// unreachable (the exact failure the sim's churn checker must catch).
func TestLoseCutoverHook(t *testing.T) {
	slot, svc, tok := churnSlot(t, 1)
	want := preload(slot, "n0", 12, 5)
	slot.SetSimHooks(&dht.SimHooks{LoseCutover: true})
	if err := slot.AddNode("n1", churnNodeServer(t, svc, "n1")); err != nil {
		t.Fatalf("the buggy cutover reports success: %v", err)
	}
	lists := make([]merging.ListID, 12)
	for i := range lists {
		lists[i] = merging.ListID(i)
	}
	got, err := slot.GetPostingLists(context.Background(), tok, lists)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, shares := range got {
		served += len(shares)
	}
	if served >= len(want) {
		t.Fatalf("lost cutover still serves %d of %d elements — the bug shape is vacuous", served, len(want))
	}
}
