// Package dht extends Zerber to a DHT-based infrastructure — the future
// direction the paper names in §3: "The extension of r-confidential
// indexing to a DHT-based infrastructure is an interesting area for
// future research."
//
// Design. Zerber's security model ties each secret share to a public
// x-coordinate: share i of every element is the sharing polynomial
// evaluated at x_i. We therefore keep n logical *share slots* (one per
// x-coordinate) and give each slot its own consistent-hashing ring of
// physical nodes. Within slot i, merged posting lists are partitioned
// across the slot's nodes by hashing the list ID; each physical node
// stores only a fraction of the index (the defining property of a DHT,
// §3) yet the client-visible contract is unchanged: a Router per slot
// implements the same narrow API as a monolithic index server, so peers
// and clients work unmodified.
//
// Confidentiality is preserved: a compromised physical node sees (a) a
// subset of merged posting lists — lengths of merged lists leak no more
// than before, and (b) shares from a single slot — fewer than k slots
// means information-theoretically nothing. Compromising an entire slot
// ring is exactly as hard as compromising one monolithic server was.
package dht

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"zerber/internal/merging"
)

// ringHash places keys and nodes on the 64-bit ring. FNV alone mixes
// short, similar strings ("node0#1", "node0#2", ...) poorly in the high
// bits, which skews arc lengths badly; a splitmix64 finalizer fixes the
// avalanche.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) // never fails
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.), a bijective mixer
// with full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// listKey is the ring key of a merged posting list.
func listKey(lid merging.ListID) uint64 {
	return ringHash(fmt.Sprintf("list:%d", lid))
}

// Ring is a consistent-hashing ring with virtual nodes. It is safe for
// concurrent use.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []point // sorted by position
	nodeSet map[string]struct{}
}

type point struct {
	pos  uint64
	node string
}

// ErrEmptyRing reports lookups on a ring with no nodes.
var ErrEmptyRing = errors.New("dht: ring has no nodes")

// NewRing creates a ring with the given number of virtual nodes per
// physical node (0 means 32).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 32
	}
	return &Ring{vnodes: vnodes, nodeSet: make(map[string]struct{})}
}

// AddNode places a node on the ring (idempotent).
func (r *Ring) AddNode(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.nodeSet[name]; dup {
		return
	}
	r.nodeSet[name] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{
			pos:  ringHash(fmt.Sprintf("%s#%d", name, v)),
			node: name,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
}

// RemoveNode takes a node off the ring; it reports whether it was present.
func (r *Ring) RemoveNode(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodeSet[name]; !ok {
		return false
	}
	delete(r.nodeSet, name)
	out := r.points[:0]
	for _, p := range r.points {
		if p.node != name {
			out = append(out, p)
		}
	}
	r.points = out
	return true
}

// Owner returns the node responsible for a key: the first virtual node
// clockwise from the key's position.
func (r *Ring) Owner(key uint64) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", ErrEmptyRing
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= key })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].node, nil
}

// OwnerOfList returns the node responsible for a merged posting list.
func (r *Ring) OwnerOfList(lid merging.ListID) (string, error) {
	return r.Owner(listKey(lid))
}

// Nodes returns the sorted physical node names.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodeSet))
	for n := range r.nodeSet {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the number of physical nodes.
func (r *Ring) NumNodes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodeSet)
}
