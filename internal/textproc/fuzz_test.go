package textproc

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTokenize verifies the tokenizer's invariants on arbitrary input:
// no panics, no empty tokens, all tokens lowercase, and token counts
// consistent with TermCounts.
func FuzzTokenize(f *testing.F) {
	f.Add("Martha sold ImClone; layoffs followed.")
	f.Add("Цербер — мифический пёс 123")
	f.Add("")
	f.Add(strings.Repeat("a", 10000))
	f.Fuzz(func(t *testing.T, content string) {
		tokens := Tokenize(content)
		total := 0
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lowercase", tok)
			}
			total++
		}
		counts := TermCounts(content)
		sum := 0
		for _, c := range counts {
			if c <= 0 {
				t.Fatal("non-positive count")
			}
			sum += c
		}
		if sum != total {
			t.Fatalf("TermCounts sums to %d, Tokenize yields %d", sum, total)
		}
	})
}

// FuzzSnippet verifies snippets never split UTF-8 sequences and never
// exceed the width budget by more than the ellipsis markers.
func FuzzSnippet(f *testing.F) {
	f.Add("some document content here", "content", 20)
	f.Add("日本語テキストのドキュメント", "テキスト", 10)
	f.Fuzz(func(t *testing.T, content, term string, width int) {
		if !utf8.ValidString(content) || width > 1<<20 {
			return
		}
		s := Snippet(content, []string{term}, width)
		if !utf8.ValidString(s) {
			t.Fatalf("snippet is not valid UTF-8: %q", s)
		}
	})
}
