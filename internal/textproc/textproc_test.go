package textproc

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Martha bought ImClone; layoffs followed. Q3-2007!")
	want := []string{"martha", "bought", "imclone", "layoffs", "followed", "q3", "2007"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Цербер — мифический пёс")
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	if got[0] != "цербер" {
		t.Errorf("first token = %q", got[0])
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
	if got := Tokenize("!!! ... ---"); len(got) != 0 {
		t.Errorf("punctuation-only input gave %v", got)
	}
}

func TestTermCounts(t *testing.T) {
	counts := TermCounts("the cat and the hat")
	if counts["the"] != 2 || counts["cat"] != 1 || counts["hat"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestTokenizeNeverProducesEmptyOrUpper(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnippetContainsTerm(t *testing.T) {
	content := strings.Repeat("filler words here ", 100) +
		"the secret Hesselhofer appointment memo" +
		strings.Repeat(" trailing text", 100)
	s := Snippet(content, []string{"hesselhofer"}, 80)
	if !strings.Contains(strings.ToLower(s), "hesselhofer") {
		t.Errorf("snippet %q does not contain the query term", s)
	}
	if len(s) > 80+2*len("…") {
		t.Errorf("snippet length %d exceeds width budget", len(s))
	}
	if !strings.HasPrefix(s, "…") || !strings.HasSuffix(s, "…") {
		t.Error("mid-document snippet must be marked with ellipses")
	}
}

func TestSnippetNoMatchReturnsHead(t *testing.T) {
	content := "Once upon a time there was a very long story about nothing much at all, repeated endlessly."
	s := Snippet(content, []string{"absent"}, 40)
	if !strings.HasPrefix(s, "Once upon") {
		t.Errorf("snippet %q must start at the document head", s)
	}
}

func TestSnippetWholeTokenMatch(t *testing.T) {
	// "art" must not match inside "Martha".
	content := strings.Repeat("Martha Stewart again and again. ", 20) + "fine art here" + strings.Repeat(" x", 50)
	s := Snippet(content, []string{"art"}, 30)
	if !strings.Contains(s, "art here") && !strings.Contains(s, "fine art") {
		t.Errorf("snippet %q matched a substring instead of a token", s)
	}
}

func TestSnippetShortDocument(t *testing.T) {
	content := "tiny doc"
	s := Snippet(content, []string{"doc"}, 250)
	if s != content {
		t.Errorf("snippet of short doc = %q, want whole content", s)
	}
}

func TestSnippetDefaultWidth(t *testing.T) {
	content := strings.Repeat("word ", 200)
	s := Snippet(content, []string{"word"}, 0)
	if len(s) > 250+2*len("…") {
		t.Errorf("default width snippet too long: %d", len(s))
	}
}

func TestSnippetValidUTF8(t *testing.T) {
	f := func(s string, w uint8) bool {
		if !utf8.ValidString(s) {
			return true // only meaningful for valid inputs
		}
		snip := Snippet(s, []string{"q"}, int(w%64)+1)
		return utf8.ValidString(snip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Specifically around multi-byte runes.
	content := strings.Repeat("日本語テキスト ", 50)
	s := Snippet(content, []string{"テキスト"}, 20)
	if !utf8.ValidString(s) {
		t.Error("snippet split a UTF-8 sequence")
	}
}

func BenchmarkTokenize(b *testing.B) {
	content := strings.Repeat("the quick brown fox jumps over the lazy dog 1234 ", 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(content)
	}
}
