// Package textproc provides the document-side text processing Zerber
// owners run before indexing: tokenization into terms, term-frequency
// counting, and snippet extraction for search results (paper §5.4.2:
// "Zerber clients request snippets from the peers hosting the top-K
// documents").
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits content into lowercase terms. A term is a maximal run
// of letters or digits; everything else separates. No stop words are
// removed — the paper's experiments explicitly keep them ("we did not
// remove stop words", §7.5).
func Tokenize(content string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	for _, r := range content {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// TermCounts tokenizes content and returns the raw per-term counts.
func TermCounts(content string) map[string]int {
	counts := make(map[string]int)
	for _, term := range Tokenize(content) {
		counts[term]++
	}
	return counts
}

// Snippet returns a window of about width bytes around the first
// occurrence of any query term in content (case-insensitive, whole-token
// match), with ellipses marking truncation. If no term occurs, the head
// of the document is returned. The paper budgets ~250 bytes per snippet
// including formatting (§7.3).
func Snippet(content string, queryTerms []string, width int) string {
	if width <= 0 {
		width = 250
	}
	lower := strings.ToLower(content)
	pos := -1
	for _, term := range queryTerms {
		t := strings.ToLower(term)
		if t == "" {
			continue
		}
		if p := indexToken(lower, t); p >= 0 && (pos < 0 || p < pos) {
			pos = p
		}
	}
	if pos < 0 {
		pos = 0
	}
	start := pos - width/2
	if start < 0 {
		start = 0
	}
	end := start + width
	if end > len(content) {
		end = len(content)
		if start = end - width; start < 0 {
			start = 0
		}
	}
	// Align to rune boundaries so we never split UTF-8 sequences.
	for start > 0 && !isRuneStart(content[start]) {
		start--
	}
	for end < len(content) && !isRuneStart(content[end]) {
		end++
	}
	snippet := content[start:end]
	if start > 0 {
		snippet = "…" + snippet
	}
	if end < len(content) {
		snippet += "…"
	}
	return snippet
}

// indexToken finds term in lower as a whole token (bounded by
// non-alphanumeric runes), returning -1 if absent.
func indexToken(lower, term string) int {
	from := 0
	for {
		p := strings.Index(lower[from:], term)
		if p < 0 {
			return -1
		}
		p += from
		beforeOK := p == 0 || !isWordByte(lower[p-1])
		afterOK := p+len(term) >= len(lower) || !isWordByte(lower[p+len(term)])
		if beforeOK && afterOK {
			return p
		}
		from = p + 1
	}
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b >= 'A' && b <= 'Z'
}

func isRuneStart(b byte) bool { return b&0xC0 != 0x80 }
