// Package posting defines the Zerber posting list element and its encoding
// into a single field secret.
//
// Paper §5.2: "An unencrypted element hence contains three fields:
// secret = [document_ID, term_ID, tf]". We pack the three fields into the
// 61 bits available below the field modulus p = 2^61 - 1:
//
//	bits 59..36  document ID (24 bits, up to ~16.7M documents)
//	bits 35..15  term ID     (21 bits, see package vocab for the ID scheme)
//	bits 14..0   term frequency count (15 bits, capped)
//
// The packed value occupies 60 bits, strictly below the modulus, so every
// element is a canonical field secret.
//
// Every element also carries a global element ID that is unique within its
// merged posting list (§5.4.1); the ID lets clients join the k shares of
// one element received from different servers, and lets owners delete
// elements individually (document IDs are encrypted, §7.3).
package posting

import (
	"errors"
	"fmt"

	"zerber/internal/field"
)

// Field widths and limits for the packed secret.
const (
	DocIDBits  = 24
	TermIDBits = 21
	TFBits     = 15

	MaxDocID  = 1<<DocIDBits - 1
	MaxTermID = 1<<TermIDBits - 1
	MaxTF     = 1<<TFBits - 1
)

// Element is one decrypted posting list element.
type Element struct {
	DocID  uint32 // document identifier (machine + local doc, paper §5.4.2)
	TermID uint32 // identifies the term within the merged list
	TF     uint16 // term frequency count within the document
}

// GlobalID uniquely identifies an element within its merged posting list.
// It is public (stored in the clear next to the shares) and used to join
// shares across servers and to address deletions.
type GlobalID uint64

// ErrFieldOverflow reports an element field exceeding its packed width.
var ErrFieldOverflow = errors.New("posting: element field exceeds packed width")

// Encode packs the element into a field secret.
func (e Element) Encode() (field.Element, error) {
	if e.DocID > MaxDocID {
		return 0, fmt.Errorf("%w: doc ID %d > %d", ErrFieldOverflow, e.DocID, MaxDocID)
	}
	if e.TermID > MaxTermID {
		return 0, fmt.Errorf("%w: term ID %d > %d", ErrFieldOverflow, e.TermID, MaxTermID)
	}
	if uint32(e.TF) > MaxTF {
		return 0, fmt.Errorf("%w: tf %d > %d", ErrFieldOverflow, e.TF, MaxTF)
	}
	v := uint64(e.DocID)<<(TermIDBits+TFBits) | uint64(e.TermID)<<TFBits | uint64(e.TF)
	return field.Element(v), nil
}

// MustEncode is Encode for values already known to be in range; it panics
// on overflow and is intended for tests and generators.
func (e Element) MustEncode() field.Element {
	v, err := e.Encode()
	if err != nil {
		panic(err)
	}
	return v
}

// Decode unpacks a field secret produced by Encode.
func Decode(v field.Element) Element {
	raw := v.Uint64()
	return Element{
		DocID:  uint32(raw >> (TermIDBits + TFBits) & MaxDocID),
		TermID: uint32(raw >> TFBits & MaxTermID),
		TF:     uint16(raw & MaxTF),
	}
}

// ClampTF converts an arbitrary term count to the packed TF width,
// saturating at MaxTF. Term frequencies in ranking are normalized by
// document length client-side, so saturation only affects pathological
// documents.
func ClampTF(count int) uint16 {
	if count < 0 {
		return 0
	}
	if count > MaxTF {
		return uint16(MaxTF)
	}
	return uint16(count)
}

func (e Element) String() string {
	return fmt.Sprintf("doc=%d term=%d tf=%d", e.DocID, e.TermID, e.TF)
}
