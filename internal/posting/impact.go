// Impact bucketing for score-ordered posting lists (Zerber+R, paper §6).
//
// Zerber+R stores posting elements in relevance order so that a top-k
// query can fetch score-ordered blocks and stop early. The servers never
// see term frequencies — they hold encrypted shares — so the order has to
// be carried by something public. We use the top ImpactBits bits of the
// element's GlobalID: the owner peer assigns them at indexing time from
// the element's TF, and every store keeps each list sorted by that bucket,
// highest first.
//
// The bucket is a coarse, order-preserving quantization of TF: bucket
// b = floor(log2(tf)), so all TFs in [2^b, 2^(b+1)) share a bucket. This
// coarseness IS the padding the paper calls for — block boundaries reveal
// only the log-scale magnitude of an element's TF, never its exact value,
// which is the same order information any score-ordered confidential
// layout must leak to be fetchable best-first (§6: order-preserving score
// buckets within the leak budget). The remaining 60 bits of the GlobalID
// stay uniformly random, so IDs remain unique for joining and deleting.
package posting

import "math/bits"

// ImpactBits is the width of the impact bucket carried in the top bits of
// a GlobalID. 16 buckets cover the full 15-bit TF range at log2
// granularity with one value to spare.
const ImpactBits = 4

// ImpactBuckets is the number of distinct impact buckets.
const ImpactBuckets = 1 << ImpactBits

// MaxImpact is the highest bucket an in-range TF can map to
// (ImpactBucket(MaxTF) == 14).
const MaxImpact = TFBits - 1

// ImpactBucket quantizes a term frequency to its impact bucket:
// floor(log2(tf)), with tf <= 1 mapping to bucket 0. Monotone in TF, so
// bucket-descending order is score-descending order up to quantization.
func ImpactBucket(tf uint16) uint8 {
	if tf <= 1 {
		return 0
	}
	return uint8(bits.Len16(tf) - 1)
}

// BucketMaxTF returns the largest TF that maps to bucket b: the upper
// bound a client may assume for any element still inside that bucket.
// Buckets above MaxImpact are unreachable from in-range TFs but are
// still bounded (by MaxTF) so arbitrary IDs stay safe to reason about.
func BucketMaxTF(b uint8) uint16 {
	if int(b) >= MaxImpact {
		return MaxTF
	}
	return uint16(1<<(int(b)+1)) - 1
}

// TagImpact overwrites the impact bits of id with bucket b.
func TagImpact(id GlobalID, b uint8) GlobalID {
	const shift = 64 - ImpactBits
	id &^= GlobalID(ImpactBuckets-1) << shift
	return id | GlobalID(b&(ImpactBuckets-1))<<shift
}

// ImpactOf extracts the impact bucket from a GlobalID.
func ImpactOf(id GlobalID) uint8 {
	return uint8(id >> (64 - ImpactBits))
}
