package posting

import (
	"fmt"
	"io"

	"zerber/internal/field"
	"zerber/internal/shamir"
)

// EncryptedShare is the unit stored on one index server: the share of one
// posting element destined for that server, together with the public
// metadata the server needs (global element ID for joining/deletion and
// the group ID for access control; paper Fig. 3 and §5.4.1).
//
// The server's own x-coordinate is implicit: a server stores only Y values.
type EncryptedShare struct {
	GlobalID GlobalID
	Group    uint32
	Y        field.Element
}

// WireBytes is the serialized size of one share on the wire and on disk:
// 8 bytes share value + 8 bytes global ID + 4 bytes group ID. The paper's
// §7.2 figure of "about 50% more space than an ordinary inverted index"
// corresponds to this 20-byte element versus a ~13-byte plain element
// (doc ID + tf + list bookkeeping).
const WireBytes = 8 + 8 + 4

// Encrypt splits one posting element into n per-server shares using
// Shamir k-out-of-n sharing (Algorithm 1a). xs are the servers' public
// x-coordinates; the i-th returned share goes to the server with
// x-coordinate xs[i]. rng supplies polynomial randomness (nil = crypto/rand).
func Encrypt(e Element, gid GlobalID, group uint32, k int, xs []field.Element, rng io.Reader) ([]EncryptedShare, error) {
	secret, err := e.Encode()
	if err != nil {
		return nil, err
	}
	shares, err := shamir.Split(secret, k, xs, rng)
	if err != nil {
		return nil, err
	}
	out := make([]EncryptedShare, len(shares))
	for i, s := range shares {
		out[i] = EncryptedShare{GlobalID: gid, Group: group, Y: s.Y}
	}
	return out, nil
}

// EncryptBatch splits a whole slice of posting elements — typically
// every distinct term of one document, the unit of Algorithm 1a — in one
// pass through a prepared shamir.Splitter. It returns n per-server
// contiguous buffers backed by a single allocation: out[i][e] is the
// share of elems[e] destined for the server with x-coordinate
// splitter.Xs()[i], carrying gids[e] and the group tag.
//
// Randomness is consumed exactly as by per-element Encrypt calls in
// element order, so under a shared deterministic rng the output is
// byte-identical to the sequential path; the difference is purely
// mechanical (a constant number of allocations per batch instead of
// several per element).
func EncryptBatch(sp *shamir.Splitter, elems []Element, gids []GlobalID, group uint32, rng io.Reader) ([][]EncryptedShare, error) {
	n := sp.N()
	s := len(elems)
	flat := make([]EncryptedShare, n*s)
	out := make([][]EncryptedShare, n)
	for i := range out {
		out[i] = flat[i*s : (i+1)*s : (i+1)*s]
	}
	if err := EncryptBatchInto(sp, elems, gids, group, rng, out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptBatchInto is EncryptBatch writing into caller-owned per-server
// buffers at the given element offset: dst[i][offset+e] receives server
// i's share of elems[e]. It lets a peer stage one large per-server
// buffer for a multi-document flush and have independent workers fill
// disjoint [offset, offset+len(elems)) windows concurrently.
func EncryptBatchInto(sp *shamir.Splitter, elems []Element, gids []GlobalID, group uint32, rng io.Reader, dst [][]EncryptedShare, offset int) error {
	if len(gids) != len(elems) {
		return fmt.Errorf("posting: %d elements but %d global IDs", len(elems), len(gids))
	}
	n := sp.N()
	if len(dst) != n {
		return fmt.Errorf("posting: %d destination buffers for %d servers", len(dst), n)
	}
	s := len(elems)
	for i := range dst {
		if len(dst[i]) < offset+s {
			return fmt.Errorf("posting: destination buffer %d holds %d shares, need offset %d + %d elements",
				i, len(dst[i]), offset, s)
		}
	}
	secrets := make([]field.Element, s)
	for e, el := range elems {
		sec, err := el.Encode()
		if err != nil {
			return err
		}
		secrets[e] = sec
	}
	ys := make([]field.Element, n*s)
	if err := sp.SplitBatch(secrets, ys, rng); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := dst[i][offset : offset+s]
		for e := 0; e < s; e++ {
			row[e] = EncryptedShare{GlobalID: gids[e], Group: group, Y: ys[i*s+e]}
		}
	}
	return nil
}

// Decrypt reconstructs a posting element from k shares gathered from
// servers with the given x-coordinates (Algorithm 1b). shares[i] must have
// been produced by the server whose public x-coordinate is xs[i].
func Decrypt(shares []EncryptedShare, xs []field.Element, k int) (Element, error) {
	pts := make([]shamir.Share, len(shares))
	for i := range shares {
		pts[i] = shamir.Share{X: xs[i], Y: shares[i].Y}
	}
	secret, err := shamir.Reconstruct(pts, k)
	if err != nil {
		return Element{}, err
	}
	return Decode(secret), nil
}
