package posting

import (
	"io"

	"zerber/internal/field"
	"zerber/internal/shamir"
)

// EncryptedShare is the unit stored on one index server: the share of one
// posting element destined for that server, together with the public
// metadata the server needs (global element ID for joining/deletion and
// the group ID for access control; paper Fig. 3 and §5.4.1).
//
// The server's own x-coordinate is implicit: a server stores only Y values.
type EncryptedShare struct {
	GlobalID GlobalID
	Group    uint32
	Y        field.Element
}

// WireBytes is the serialized size of one share on the wire and on disk:
// 8 bytes share value + 8 bytes global ID + 4 bytes group ID. The paper's
// §7.2 figure of "about 50% more space than an ordinary inverted index"
// corresponds to this 20-byte element versus a ~13-byte plain element
// (doc ID + tf + list bookkeeping).
const WireBytes = 8 + 8 + 4

// Encrypt splits one posting element into n per-server shares using
// Shamir k-out-of-n sharing (Algorithm 1a). xs are the servers' public
// x-coordinates; the i-th returned share goes to the server with
// x-coordinate xs[i]. rng supplies polynomial randomness (nil = crypto/rand).
func Encrypt(e Element, gid GlobalID, group uint32, k int, xs []field.Element, rng io.Reader) ([]EncryptedShare, error) {
	secret, err := e.Encode()
	if err != nil {
		return nil, err
	}
	shares, err := shamir.Split(secret, k, xs, rng)
	if err != nil {
		return nil, err
	}
	out := make([]EncryptedShare, len(shares))
	for i, s := range shares {
		out[i] = EncryptedShare{GlobalID: gid, Group: group, Y: s.Y}
	}
	return out, nil
}

// Decrypt reconstructs a posting element from k shares gathered from
// servers with the given x-coordinates (Algorithm 1b). shares[i] must have
// been produced by the server whose public x-coordinate is xs[i].
func Decrypt(shares []EncryptedShare, xs []field.Element, k int) (Element, error) {
	pts := make([]shamir.Share, len(shares))
	for i := range shares {
		pts[i] = shamir.Share{X: xs[i], Y: shares[i].Y}
	}
	secret, err := shamir.Reconstruct(pts, k)
	if err != nil {
		return Element{}, err
	}
	return Decode(secret), nil
}
