package posting

import (
	"math/rand"
	"testing"

	"zerber/internal/field"
	"zerber/internal/shamir"
)

func batchRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func batchXs(n int) []field.Element {
	xs := make([]field.Element, n)
	for i := range xs {
		xs[i] = field.Element(i + 1)
	}
	return xs
}

// batchElems builds s distinct in-range posting elements.
func batchElems(s int, rng *rand.Rand) ([]Element, []GlobalID) {
	elems := make([]Element, s)
	gids := make([]GlobalID, s)
	for i := range elems {
		elems[i] = Element{
			DocID:  rng.Uint32() & MaxDocID,
			TermID: rng.Uint32() & MaxTermID,
			TF:     uint16(rng.Uint32() & MaxTF),
		}
		gids[i] = GlobalID(rng.Uint64())
	}
	return elems, gids
}

// TestEncryptBatchMatchesSequential pins EncryptBatch byte-identical to
// per-element Encrypt under a shared deterministic stream.
func TestEncryptBatchMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ k, n, elems int }{
		{2, 3, 50}, {3, 5, 31}, {1, 2, 9}, {4, 4, 12},
	} {
		elems, gids := batchElems(tc.elems, batchRand(3))
		xs := batchXs(tc.n)
		const group = 7

		seqRng := batchRand(1000 + int64(tc.k))
		want := make([][]EncryptedShare, tc.n)
		for e, el := range elems {
			shares, err := Encrypt(el, gids[e], group, tc.k, xs, seqRng)
			if err != nil {
				t.Fatal(err)
			}
			for i, sh := range shares {
				want[i] = append(want[i], sh)
			}
		}

		sp, err := shamir.NewSplitter(tc.k, xs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncryptBatch(sp, elems, gids, group, batchRand(1000+int64(tc.k)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != tc.n {
			t.Fatalf("k=%d n=%d: %d server rows", tc.k, tc.n, len(got))
		}
		for i := range got {
			for e := range got[i] {
				if got[i][e] != want[i][e] {
					t.Fatalf("k=%d n=%d: server %d element %d: batch %+v, sequential %+v",
						tc.k, tc.n, i, e, got[i][e], want[i][e])
				}
			}
		}
	}
}

// TestEncryptBatchDecrypts: any k of the n per-server rows reconstruct
// every original element.
func TestEncryptBatchDecrypts(t *testing.T) {
	rng := batchRand(9)
	const k, n, s = 2, 4, 25
	elems, gids := batchElems(s, rng)
	xs := batchXs(n)
	sp, err := shamir.NewSplitter(k, xs)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := EncryptBatch(sp, elems, gids, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for e := range elems {
		perm := rng.Perm(n)[:k]
		shares := make([]EncryptedShare, k)
		subXs := make([]field.Element, k)
		for j, i := range perm {
			shares[j] = rows[i][e]
			subXs[j] = xs[i]
			if rows[i][e].GlobalID != gids[e] || rows[i][e].Group != 3 {
				t.Fatalf("element %d server %d: metadata %+v", e, i, rows[i][e])
			}
		}
		got, err := Decrypt(shares, subXs, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != elems[e] {
			t.Fatalf("element %d: decrypted %v, want %v", e, got, elems[e])
		}
	}
}

func TestEncryptBatchValidation(t *testing.T) {
	sp, err := shamir.NewSplitter(2, batchXs(3))
	if err != nil {
		t.Fatal(err)
	}
	elems, gids := batchElems(4, batchRand(1))
	if _, err := EncryptBatch(sp, elems, gids[:3], 1, batchRand(1)); err == nil {
		t.Error("mismatched gids length must be rejected")
	}
	bad := make([]Element, 1)
	bad[0] = Element{DocID: MaxDocID + 1}
	if _, err := EncryptBatch(sp, bad, gids[:1], 1, batchRand(1)); err == nil {
		t.Error("out-of-range element must surface the encode error")
	}
	if err := EncryptBatchInto(sp, elems, gids, 1, batchRand(1),
		make([][]EncryptedShare, 2), 0); err == nil {
		t.Error("wrong destination buffer count must be rejected")
	}
}

// TestEncryptBatchIntoOffset: windows written at an offset must land in
// the right place and leave the rest of the buffers untouched.
func TestEncryptBatchIntoOffset(t *testing.T) {
	rng := batchRand(21)
	const k, n, s = 2, 3, 10
	elems, gids := batchElems(s, rng)
	xs := batchXs(n)
	sp, err := shamir.NewSplitter(k, xs)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([][]EncryptedShare, n)
	for i := range dst {
		dst[i] = make([]EncryptedShare, s+4)
	}
	if err := EncryptBatchInto(sp, elems, gids, 2, rng, dst, 4); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		for e := 0; e < 4; e++ {
			if dst[i][e] != (EncryptedShare{}) {
				t.Fatalf("server %d slot %d clobbered: %+v", i, e, dst[i][e])
			}
		}
	}
	for e := range elems {
		got, err := Decrypt([]EncryptedShare{dst[0][4+e], dst[1][4+e]},
			[]field.Element{xs[0], xs[1]}, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != elems[e] {
			t.Fatalf("offset element %d: decrypted %v, want %v", e, got, elems[e])
		}
	}
}

// bench5kDoc is the paper's §5.1 unit: one 5,000-term document, k=2 of
// n=3 (the evaluation setup).
func bench5kDoc(b *testing.B) ([]Element, []GlobalID, []field.Element) {
	b.Helper()
	elems, gids := batchElems(5000, batchRand(4))
	return elems, gids, batchXs(3)
}

// BenchmarkEncryptBatch: one op = encrypting a 5,000-term document
// through the batched pipeline.
func BenchmarkEncryptBatch(b *testing.B) {
	elems, gids, xs := bench5kDoc(b)
	sp, err := shamir.NewSplitter(2, xs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncryptBatch(sp, elems, gids, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncryptSequential is the per-element baseline the pipeline
// replaced: one Encrypt call (validate, allocate polynomial, allocate
// shares) per element, then the per-server regroup copy.
func BenchmarkEncryptSequential(b *testing.B) {
	elems, gids, xs := bench5kDoc(b)
	src := field.NewShareSource(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perServer := make([][]EncryptedShare, len(xs))
		for e, el := range elems {
			shares, err := Encrypt(el, gids[e], 1, 2, xs, src)
			if err != nil {
				b.Fatal(err)
			}
			for j, sh := range shares {
				perServer[j] = append(perServer[j], sh)
			}
		}
	}
}

// TestEncryptBatchIntoBoundsChecked: an undersized destination row must
// surface as an error, not a panic inside a worker goroutine.
func TestEncryptBatchIntoBoundsChecked(t *testing.T) {
	sp, err := shamir.NewSplitter(2, batchXs(3))
	if err != nil {
		t.Fatal(err)
	}
	elems, gids := batchElems(4, batchRand(2))
	dst := make([][]EncryptedShare, 3)
	for i := range dst {
		dst[i] = make([]EncryptedShare, 4) // no room for offset 2
	}
	if err := EncryptBatchInto(sp, elems, gids, 1, batchRand(2), dst, 2); err == nil {
		t.Error("undersized destination row must be rejected")
	}
}
