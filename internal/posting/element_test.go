package posting

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"zerber/internal/field"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Element{
		{0, 0, 0},
		{1, 2, 3},
		{MaxDocID, MaxTermID, MaxTF},
		{MaxDocID, 0, 0},
		{0, MaxTermID, 0},
		{0, 0, MaxTF},
		{123456, 54321, 999},
	}
	for _, e := range cases {
		v, err := e.Encode()
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if got := Decode(v); got != e {
			t.Errorf("round trip %v -> %d -> %v", e, v, got)
		}
	}
}

func TestEncodeFitsField(t *testing.T) {
	// The maximal element must still be a canonical field value.
	e := Element{MaxDocID, MaxTermID, MaxTF}
	v, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint64() >= field.P {
		t.Fatalf("encoded element %d exceeds field modulus", v)
	}
}

func TestEncodeOverflow(t *testing.T) {
	if _, err := (Element{DocID: MaxDocID + 1}).Encode(); !errors.Is(err, ErrFieldOverflow) {
		t.Errorf("doc overflow: got %v", err)
	}
	if _, err := (Element{TermID: MaxTermID + 1}).Encode(); !errors.Is(err, ErrFieldOverflow) {
		t.Errorf("term overflow: got %v", err)
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode with overflowing field must panic")
		}
	}()
	_ = Element{DocID: MaxDocID + 1}.MustEncode()
}

func TestRoundTripQuick(t *testing.T) {
	f := func(doc, term uint32, tf uint16) bool {
		e := Element{DocID: doc & MaxDocID, TermID: term & MaxTermID, TF: tf & MaxTF}
		v, err := e.Encode()
		if err != nil {
			return false
		}
		return Decode(v) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampTF(t *testing.T) {
	cases := []struct {
		in   int
		want uint16
	}{
		{-5, 0}, {0, 0}, {1, 1}, {MaxTF, uint16(MaxTF)}, {MaxTF + 1, uint16(MaxTF)}, {1 << 30, uint16(MaxTF)},
	}
	for _, c := range cases {
		if got := ClampTF(c.in); got != c.want {
			t.Errorf("ClampTF(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := []field.Element{11, 22, 33}
	e := Element{DocID: 777, TermID: 4242, TF: 9}
	shares, err := Encrypt(e, 55, 3, 2, xs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 {
		t.Fatalf("got %d shares, want 3", len(shares))
	}
	for _, s := range shares {
		if s.GlobalID != 55 || s.Group != 3 {
			t.Fatalf("share metadata corrupted: %+v", s)
		}
	}
	// Any 2 of 3 shares decrypt.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for _, p := range pairs {
		got, err := Decrypt(
			[]EncryptedShare{shares[p[0]], shares[p[1]]},
			[]field.Element{xs[p[0]], xs[p[1]]}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Fatalf("pair %v decrypted %v, want %v", p, got, e)
		}
	}
}

func TestDecryptTooFewShares(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := []field.Element{1, 2, 3}
	e := Element{DocID: 1, TermID: 2, TF: 3}
	shares, err := Encrypt(e, 1, 1, 2, xs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(shares[:1], xs[:1], 2); err == nil {
		t.Error("decrypting with k-1 shares must fail")
	}
}

func TestSingleShareRevealsNothingStructurally(t *testing.T) {
	// With k=2, one share value of the SAME element differs between two
	// independent encryptions: the stored Y is randomized, so a
	// compromised server cannot link equal plaintexts (paper §5.2).
	xs := []field.Element{5, 6}
	e := Element{DocID: 9, TermID: 9, TF: 9}
	rng := rand.New(rand.NewSource(3))
	a, err := Encrypt(e, 1, 1, 2, xs, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encrypt(e, 2, 1, 2, xs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Y == b[0].Y && a[1].Y == b[1].Y {
		t.Fatal("two encryptions of one element produced identical share values")
	}
}
