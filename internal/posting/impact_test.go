package posting

import "testing"

func TestImpactBucketMonotone(t *testing.T) {
	prev := uint8(0)
	for tf := 0; tf <= MaxTF; tf++ {
		b := ImpactBucket(uint16(tf))
		if b < prev {
			t.Fatalf("ImpactBucket not monotone: tf=%d bucket=%d < prev %d", tf, b, prev)
		}
		if tf > 0 && uint16(tf) > BucketMaxTF(b) {
			t.Fatalf("tf=%d exceeds BucketMaxTF(%d)=%d", tf, b, BucketMaxTF(b))
		}
		prev = b
	}
	if got := ImpactBucket(MaxTF); got != MaxImpact {
		t.Fatalf("ImpactBucket(MaxTF) = %d, want %d", got, MaxImpact)
	}
}

func TestImpactBucketBounds(t *testing.T) {
	cases := []struct {
		tf     uint16
		bucket uint8
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{255, 7}, {256, 8}, {16384, 14}, {MaxTF, 14},
	}
	for _, c := range cases {
		if got := ImpactBucket(c.tf); got != c.bucket {
			t.Errorf("ImpactBucket(%d) = %d, want %d", c.tf, got, c.bucket)
		}
	}
	for b := uint8(0); b < ImpactBuckets; b++ {
		max := BucketMaxTF(b)
		if max > MaxTF {
			t.Fatalf("BucketMaxTF(%d) = %d exceeds MaxTF", b, max)
		}
		if ImpactBucket(max) > b {
			t.Fatalf("BucketMaxTF(%d) = %d maps above its own bucket", b, max)
		}
	}
}

func TestTagImpactRoundTrip(t *testing.T) {
	ids := []GlobalID{0, 1, 0xFFFFFFFFFFFFFFFF, 0x0123456789ABCDEF}
	for _, id := range ids {
		for b := uint8(0); b < ImpactBuckets; b++ {
			tagged := TagImpact(id, b)
			if got := ImpactOf(tagged); got != b {
				t.Fatalf("ImpactOf(TagImpact(%#x, %d)) = %d", id, b, got)
			}
			const low = GlobalID(1)<<(64-ImpactBits) - 1
			if tagged&low != id&low {
				t.Fatalf("TagImpact(%#x, %d) disturbed low bits: %#x", id, b, tagged)
			}
		}
	}
}
