package journal

import (
	"os"
	"path/filepath"
	"testing"
)

func sampleOp(id uint64, kind Kind) Op {
	return Op{
		ID:      id,
		Kind:    kind,
		Servers: 3,
		Docs: []DocState{{
			ID: 7, Name: "memo.txt", Content: "martha imclone", Group: 1,
			Refs: []Ref{
				{Term: "martha", List: 2, GID: 100 + id, TF: 1},
				{Term: "imclone", List: 3, GID: 200 + id, TF: 1},
			},
		}},
		Elems: []Elem{
			{List: 2, GID: 100 + id, Group: 1, Ys: []uint64{11, 22, 33}},
			{List: 3, GID: 200 + id, Group: 1, Ys: []uint64{44, 55, 66}},
		},
		Dels: []Del{{List: 2, GID: 9}},
	}
}

func open(t *testing.T, path string) (*Journal, []*State) {
	t.Helper()
	j, states, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, states
}

func TestJournalLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, states := open(t, path)
	if len(states) != 0 {
		t.Fatalf("fresh journal replayed %d ops", len(states))
	}

	op := sampleOp(42, KindUpdate)
	if err := j.Begin(op); err != nil {
		t.Fatal(err)
	}
	if err := j.Ack(42, StageInsert, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Ack(42, StageInsert, 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, states := open(t, path)
	defer j2.Close()
	if len(states) != 1 {
		t.Fatalf("replayed %d ops, want 1", len(states))
	}
	st := states[0]
	if st.Done {
		t.Error("op without End replayed as done")
	}
	if st.InsertAcks != 0b101 || st.DeleteAcks != 0 {
		t.Errorf("acks = %b/%b, want 101/0", st.InsertAcks, st.DeleteAcks)
	}
	if len(st.Op.Elems) != 2 || st.Op.Elems[0].Ys[2] != 33 {
		t.Errorf("payload not recovered: %+v", st.Op.Elems)
	}
	if len(st.Op.Docs) != 1 || st.Op.Docs[0].Content != "martha imclone" {
		t.Errorf("doc state not recovered: %+v", st.Op.Docs)
	}

	// Finish the op through the reopened journal.
	for _, srv := range []int{0, 1, 2} {
		if err := j2.Ack(42, StageDelete, srv); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Ack(42, StageInsert, 1); err != nil {
		t.Fatal(err)
	}
	if err := j2.End(42); err != nil {
		t.Fatal(err)
	}

	j3, states := open(t, path)
	defer j3.Close()
	if len(states) != 1 || !states[0].Done {
		t.Fatalf("completed op not replayed as done: %+v", states)
	}
}

func TestJournalReBeginResetsAcks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, _ := open(t, path)
	op := sampleOp(1, KindIndex)
	if err := j.Begin(op); err != nil {
		t.Fatal(err)
	}
	if err := j.Ack(1, StageInsert, 0); err != nil {
		t.Fatal(err)
	}
	// Extend the payload (a batch grown between retries) and re-Begin.
	op.Elems = append(op.Elems, Elem{List: 5, GID: 999, Group: 1, Ys: []uint64{1, 2, 3}})
	if err := j.Begin(op); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, states := open(t, path)
	defer j2.Close()
	if len(states) != 1 {
		t.Fatalf("replayed %d ops, want 1", len(states))
	}
	if states[0].InsertAcks != 0 {
		t.Errorf("re-Begin must clear stale acks, got %b", states[0].InsertAcks)
	}
	if len(states[0].Op.Elems) != 3 {
		t.Errorf("extended payload lost: %d elems", len(states[0].Op.Elems))
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, _ := open(t, path)
	if err := j.Begin(sampleOp(1, KindIndex)); err != nil {
		t.Fatal(err)
	}
	if err := j.End(1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: write half a frame of garbage.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	j2, states := open(t, path)
	if len(states) != 1 || !states[0].Done {
		t.Fatalf("replay after torn tail: %+v", states)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appending after truncation must yield a consistent journal.
	if err := j2.Begin(sampleOp(2, KindDelete)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, states := open(t, path)
	defer j3.Close()
	if len(states) != 2 {
		t.Fatalf("replayed %d ops after post-truncation append, want 2", len(states))
	}
}

func TestJournalRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, _ := open(t, path)
	// A long history: many completed ops, one pending with partial acks.
	for id := uint64(1); id <= 20; id++ {
		if err := j.Begin(sampleOp(id, KindIndex)); err != nil {
			t.Fatal(err)
		}
		if err := j.End(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Begin(sampleOp(99, KindUpdate)); err != nil {
		t.Fatal(err)
	}
	if err := j.Ack(99, StageInsert, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	big, _ := os.Stat(path)

	// Compact to one snapshot plus the pending op.
	snapshot := &State{Op: Op{ID: 1000, Kind: KindIndex, Servers: 3,
		Docs: []DocState{{ID: 7, Content: "live state", Group: 1}}}, Done: true}
	pending := &State{Op: sampleOp(99, KindUpdate), InsertAcks: 0b010}
	if err := j.Rewrite([]*State{snapshot, pending}); err != nil {
		t.Fatal(err)
	}
	small, _ := os.Stat(path)
	if small.Size() >= big.Size() {
		t.Errorf("rewrite did not shrink the journal: %d -> %d", big.Size(), small.Size())
	}
	// The rewritten journal must stay appendable and replay correctly.
	if err := j.Ack(99, StageInsert, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, states := open(t, path)
	defer j2.Close()
	if len(states) != 2 {
		t.Fatalf("replayed %d ops, want 2", len(states))
	}
	if !states[0].Done || states[0].Op.Docs[0].Content != "live state" {
		t.Errorf("snapshot op mangled: %+v", states[0])
	}
	if states[1].Done || states[1].InsertAcks != 0b011 {
		t.Errorf("pending op mangled: done=%v acks=%b", states[1].Done, states[1].InsertAcks)
	}
}
