package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"

	"zerber/internal/wal"
)

// journalBytes encodes a sequence of well-formed records as one journal
// byte stream, for the fuzz seed corpus.
func journalBytes(t testing.TB, ops []Op, acks [][3]uint64, ends []uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, op := range ops {
		body, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		if err := wal.AppendFrame(&buf, append([]byte{recBegin}, body...)); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range acks {
		var rec [12]byte
		rec[0] = recAck
		binary.LittleEndian.PutUint64(rec[1:9], a[0])
		rec[9] = uint8(a[1])
		binary.LittleEndian.PutUint16(rec[10:12], uint16(a[2]))
		if err := wal.AppendFrame(&buf, rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ends {
		var rec [9]byte
		rec[0] = recEnd
		binary.LittleEndian.PutUint64(rec[1:9], id)
		if err := wal.AppendFrame(&buf, rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzJournalDecode throws arbitrary byte streams at the journal replay
// fold — the exact code path peer.New runs on an untrusted on-disk file
// after a crash. It must never panic, must never claim more valid bytes
// than the input holds, and must be prefix-stable: re-folding exactly
// the valid prefix must reproduce the same states (so truncating a torn
// tail, as Open does, never changes the recovered state). Seeds mirror
// real records the way internal/wal's FuzzDecode seeds real frames. Run
// with `go test -fuzz=FuzzJournalDecode ./internal/journal`.
func FuzzJournalDecode(f *testing.F) {
	realOp := Op{
		ID: 7, Kind: KindUpdate, Servers: 3,
		Docs: []DocState{{ID: 1, Content: "martha imclone", Group: 1,
			Refs: []Ref{{Term: "martha", List: 2, GID: 99, TF: 1}}}},
		Elems: []Elem{{List: 2, GID: 99, Group: 1, Ys: []uint64{3, 5, 7}}},
		Dels:  []Del{{List: 1, GID: 42}},
	}
	full := journalBytes(f, []Op{realOp}, [][3]uint64{{7, uint64(StageInsert), 0}, {7, uint64(StageInsert), 2}}, []uint64{7})
	f.Add(full)
	f.Add(full[:len(full)-3]) // torn tail
	f.Add(journalBytes(f, []Op{{ID: 1, Kind: KindDelete, Servers: 2, Removed: []uint32{9}, Dels: []Del{{List: 0, GID: 1}}}}, nil, nil))
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		states, valid := foldStream(bytes.NewReader(data))
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside input of %d bytes", valid, len(data))
		}
		for _, st := range states {
			if st == nil {
				t.Fatal("nil state folded out of the journal")
			}
		}
		restates, revalid := foldStream(bytes.NewReader(data[:valid]))
		if revalid != valid {
			t.Fatalf("refolding the valid prefix claims %d bytes, first pass %d", revalid, valid)
		}
		if !reflect.DeepEqual(states, restates) {
			t.Fatalf("refolding the valid prefix diverged:\n first: %+v\nsecond: %+v", states, restates)
		}
	})
}

// TestFoldStreamMatchesOpen pins foldStream (the fuzzed entry point) to
// Open's replay on a real on-disk journal, so the fuzz target keeps
// testing the code path recovery actually uses.
func TestFoldStreamMatchesOpen(t *testing.T) {
	path := t.TempDir() + "/j.journal"
	jn, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	op := Op{ID: 3, Kind: KindIndex, Servers: 2, Elems: []Elem{{List: 1, GID: 8, Group: 1, Ys: []uint64{1, 2}}}}
	if err := jn.Begin(op); err != nil {
		t.Fatal(err)
	}
	if err := jn.Ack(3, StageInsert, 1); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	jn2, states, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	raw := journalBytes(t, []Op{op}, [][3]uint64{{3, uint64(StageInsert), 1}}, nil)
	folded, valid := foldStream(bufio.NewReader(bytes.NewReader(raw)))
	if valid != int64(len(raw)) {
		t.Fatalf("foldStream accepted %d of %d bytes", valid, len(raw))
	}
	if !reflect.DeepEqual(states, folded) {
		t.Fatalf("foldStream and Open disagree:\n open: %+v\n fold: %+v", states, folded)
	}
}
