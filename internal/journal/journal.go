// Package journal persists a document owner's in-flight index mutations
// so they survive crashes and are exactly-once in effect.
//
// Zerber peers mutate the central index with multi-server, multi-stage
// operations: an update must insert the changed elements under fresh
// global IDs on every server and only then delete the old ones, or a
// partial failure orphans shares on the servers that succeeded (the
// workflow-net view: a mutation is a transition with explicit
// intermediate states, not an ad-hoc call sequence). The journal is the
// redo log of those transitions. Every mutation becomes one operation
// record — unique op ID, the staged encrypted payload (per-server share
// values, so a retry resends byte-identical bytes), the elements to
// delete, and the post-state of the touched documents — followed by one
// ack record per server per stage and a final end record. Replaying the
// journal therefore recovers both halves of a peer: completed operations
// rebuild the local document/reference state, and unfinished operations
// come back with their ack bitmaps so recovery resumes exactly where the
// crash interrupted, skipping servers that already acknowledged.
//
// Records ride the variable-length CRC framing of package wal
// (wal.AppendFrame/ReadFrame): a torn or corrupt tail — the normal
// result of a crash mid-append — ends replay cleanly and is truncated so
// subsequent appends continue from a consistent point.
//
// Durability contract: Begin is synced before the first network send, so
// a crash can lose acks (re-sending is idempotent) but never the payload
// of an operation that may have partially reached the servers. Acks are
// buffered and synced with End, or explicitly via Sync on error paths.
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"zerber/internal/wal"
)

// Kind classifies an operation by its stage shape.
type Kind uint8

// The mutation kinds of the peer's narrow write interface.
const (
	// KindIndex inserts fresh elements only (IndexDocument, Batch.Flush).
	KindIndex Kind = 1
	// KindUpdate inserts fresh elements, then deletes the superseded
	// ones — the two-stage protocol that never loses the old postings.
	KindUpdate Kind = 2
	// KindDelete deletes elements only (DeleteDocument).
	KindDelete Kind = 3
)

// Elem is one staged posting element with its per-server share values:
// Ys[i] is the share destined for server i, in the peer's server order.
// Persisting the share values (not the plaintext element) is what makes
// retries byte-identical; the journal never holds more than the servers
// collectively see anyway.
type Elem struct {
	List  uint32   `json:"list"`
	GID   uint64   `json:"gid"`
	Group uint32   `json:"group"`
	Ys    []uint64 `json:"ys"`
}

// Del addresses one element to delete.
type Del struct {
	List uint32 `json:"list"`
	GID  uint64 `json:"gid"`
}

// Ref is one term's central-index reference in a document's post-state.
type Ref struct {
	Term string `json:"term"`
	List uint32 `json:"list"`
	GID  uint64 `json:"gid"`
	TF   uint16 `json:"tf"`
}

// DocState is the post-state of one document touched by an operation:
// everything the peer needs to reinstall the document locally (content
// for snippets and term counts, refs for future updates and deletes).
type DocState struct {
	ID      uint32 `json:"id"`
	Name    string `json:"name,omitempty"`
	Content string `json:"content"`
	Group   uint32 `json:"group"`
	Refs    []Ref  `json:"refs"`
}

// Op is one journaled mutation.
type Op struct {
	// ID is the mutation's unique operation ID; the transport stages
	// derived from it make redelivery a server-side no-op.
	ID   uint64 `json:"id"`
	Kind Kind   `json:"kind"`
	// Servers is the server count the payload was split for; reopening
	// under a different cluster shape is a configuration error.
	Servers int `json:"servers"`
	// Docs carries the post-state of the documents this op installs.
	Docs []DocState `json:"docs,omitempty"`
	// Removed lists document IDs this op deletes.
	Removed []uint32 `json:"removed,omitempty"`
	// Elems is the insert-stage payload.
	Elems []Elem `json:"elems,omitempty"`
	// Dels is the delete-stage payload.
	Dels []Del `json:"dels,omitempty"`
}

// State is one operation folded out of the journal: the (latest) op
// record plus its acknowledged progress.
type State struct {
	Op Op
	// InsertAcks and DeleteAcks are per-server bitmaps (bit i = server i
	// acknowledged that stage). MaxServers bounds the width.
	InsertAcks uint64
	DeleteAcks uint64
	// Done reports that the op completed and its local post-state was
	// committed.
	Done bool
}

// MaxServers is the widest cluster a journal can track (ack bitmaps are
// one machine word).
const MaxServers = 64

// Record kinds inside a frame payload.
const (
	recBegin byte = 1 // followed by JSON(Op)
	recAck   byte = 2 // followed by opID(8) stage(1) server(2)
	recEnd   byte = 3 // followed by opID(8)
)

// Stages of an op, as recorded in ack records.
const (
	StageInsert uint8 = 1
	StageDelete uint8 = 2
)

// ErrClosed reports appends to a closed journal.
var ErrClosed = errors.New("journal: closed")

// Journal is an append-only mutation journal. It is safe for concurrent
// use, though peers serialize mutations anyway.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	path   string
	closed bool
}

// Open reads the journal at path (creating it if absent), folds its
// records into per-operation states, truncates any torn or corrupt tail,
// and opens the file for appending. States come back in first-Begin
// order: replaying their Done ops in order reproduces the peer's local
// document state, and the rest are the in-flight ops to resume.
func Open(path string) (*Journal, []*State, error) {
	states, validBytes, err := replay(path)
	if err != nil {
		return nil, nil, err
	}
	if info, err := os.Stat(path); err == nil && info.Size() > validBytes {
		if err := os.Truncate(path, validBytes); err != nil {
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, states, nil
}

// replay folds the journal file into operation states and reports how
// many bytes of the file were valid.
func replay(path string) ([]*State, int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	states, validBytes := foldStream(bufio.NewReader(f))
	return states, validBytes, nil
}

// foldStream folds a journal byte stream into operation states and
// reports how many bytes formed the valid prefix. It never fails: a
// torn, truncated, or corrupt frame — the normal result of a crash
// mid-append, or arbitrary fuzzer input — simply ends the prefix, and
// everything before it is the consistent journal.
func foldStream(r io.Reader) ([]*State, int64) {
	br := bufio.NewReader(r)
	byID := make(map[uint64]*State)
	var order []*State
	var validBytes int64
	for {
		payload, err := wal.ReadFrame(br)
		if err != nil {
			// io.EOF is the clean end; anything else is a torn tail or
			// corruption. Either way everything before this frame is
			// the consistent prefix.
			break
		}
		if decodeErr := fold(payload, byID, &order); decodeErr != nil {
			break
		}
		validBytes += wal.FrameSize(payload)
	}
	return order, validBytes
}

// fold applies one record payload to the replay state.
func fold(payload []byte, byID map[uint64]*State, order *[]*State) error {
	if len(payload) == 0 {
		return errors.New("journal: empty record")
	}
	body := payload[1:]
	switch payload[0] {
	case recBegin:
		var op Op
		if err := json.Unmarshal(body, &op); err != nil {
			return fmt.Errorf("journal: op record: %w", err)
		}
		if st, ok := byID[op.ID]; ok {
			// A re-Begin replaces the payload (a batch extended between
			// retries) and restarts the insert stage: earlier acks cover
			// a smaller payload, so they no longer count.
			st.Op = op
			st.InsertAcks, st.DeleteAcks = 0, 0
			return nil
		}
		st := &State{Op: op}
		byID[op.ID] = st
		*order = append(*order, st)
	case recAck:
		if len(body) != 11 {
			return fmt.Errorf("journal: ack record of %d bytes", len(body))
		}
		id := binary.LittleEndian.Uint64(body[:8])
		stage := body[8]
		srv := binary.LittleEndian.Uint16(body[9:11])
		st, ok := byID[id]
		if !ok || srv >= MaxServers {
			return fmt.Errorf("journal: ack for unknown op %d / server %d", id, srv)
		}
		switch stage {
		case StageInsert:
			st.InsertAcks |= 1 << srv
		case StageDelete:
			st.DeleteAcks |= 1 << srv
		default:
			return fmt.Errorf("journal: ack with unknown stage %d", stage)
		}
	case recEnd:
		if len(body) != 8 {
			return fmt.Errorf("journal: end record of %d bytes", len(body))
		}
		id := binary.LittleEndian.Uint64(body[:8])
		st, ok := byID[id]
		if !ok {
			return fmt.Errorf("journal: end for unknown op %d", id)
		}
		st.Done = true
	default:
		return fmt.Errorf("journal: unknown record kind %d", payload[0])
	}
	return nil
}

func (j *Journal) append(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return wal.AppendFrame(j.w, payload)
}

// Begin journals an operation record and syncs it to stable storage: the
// payload must be durable before the first byte goes to a server, or a
// crash could leave servers holding shares the owner can no longer
// re-derive. Re-beginning an op ID replaces its payload and clears its
// acks (see Open).
func (j *Journal) Begin(op Op) error {
	body, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("journal: encoding op %d: %w", op.ID, err)
	}
	if err := j.append(append([]byte{recBegin}, body...)); err != nil {
		return err
	}
	return j.Sync()
}

// Ack journals one server's acknowledgement of one stage. Acks are
// buffered: losing one to a crash merely causes an idempotent resend.
func (j *Journal) Ack(opID uint64, stage uint8, server int) error {
	if server < 0 || server >= MaxServers {
		return fmt.Errorf("journal: server index %d out of range", server)
	}
	var body [12]byte
	body[0] = recAck
	binary.LittleEndian.PutUint64(body[1:9], opID)
	body[9] = stage
	binary.LittleEndian.PutUint16(body[10:12], uint16(server))
	return j.append(body[:])
}

// End journals an operation's completion and syncs.
func (j *Journal) End(opID uint64) error {
	var body [9]byte
	body[0] = recEnd
	binary.LittleEndian.PutUint64(body[1:9], opID)
	if err := j.append(body[:]); err != nil {
		return err
	}
	return j.Sync()
}

// Sync flushes buffered records and fsyncs the file.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush on close: %w", err)
	}
	return j.f.Close()
}

// Rewrite replaces the journal's contents with exactly the given states
// — the peer-side twin of the durable server's WAL compaction. A
// long-lived peer accumulates one op record per historical mutation;
// rewriting with one completed snapshot op per live document plus the
// in-flight ops bounds recovery time by the index size instead of its
// history. The new contents go to a temporary file that atomically
// replaces the journal, so a crash mid-rewrite leaves either the old or
// the new journal intact.
func (j *Journal) Rewrite(states []*State) error {
	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening compaction file: %w", err)
	}
	w := bufio.NewWriter(f)
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	for _, st := range states {
		body, err := json.Marshal(st.Op)
		if err != nil {
			return fail(fmt.Errorf("journal: encoding op %d: %w", st.Op.ID, err))
		}
		if err := wal.AppendFrame(w, append([]byte{recBegin}, body...)); err != nil {
			return fail(err)
		}
		for srv := 0; srv < MaxServers; srv++ {
			for _, stage := range []struct {
				acks  uint64
				stage uint8
			}{{st.InsertAcks, StageInsert}, {st.DeleteAcks, StageDelete}} {
				if stage.acks&(1<<srv) == 0 {
					continue
				}
				var rec [12]byte
				rec[0] = recAck
				binary.LittleEndian.PutUint64(rec[1:9], st.Op.ID)
				rec[9] = stage.stage
				binary.LittleEndian.PutUint16(rec[10:12], uint16(srv))
				if err := wal.AppendFrame(w, rec[:]); err != nil {
					return fail(err)
				}
			}
		}
		if st.Done {
			var rec [9]byte
			rec[0] = recEnd
			binary.LittleEndian.PutUint64(rec[1:9], st.Op.ID)
			if err := wal.AppendFrame(w, rec[:]); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("journal: flushing compaction file: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("journal: syncing compaction file: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		os.Remove(tmp)
		return ErrClosed
	}
	if err := j.w.Flush(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: flush before swap: %w", err)
	}
	if err := j.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: closing old journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("journal: swapping journals: %w", err)
	}
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening compacted journal: %w", err)
	}
	j.f = nf
	j.w = bufio.NewWriter(nf)
	return nil
}
