package auth

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPseudonymDeterministic(t *testing.T) {
	p := NewPseudonymizerWithKey([]byte("0123456789abcdef0123456789abcdef"))
	a := p.Pseudonym("alice")
	if a != p.Pseudonym("alice") {
		t.Fatal("pseudonym not stable")
	}
	if a == p.Pseudonym("bob") {
		t.Fatal("distinct users collided")
	}
	if !IsPseudonym(a) {
		t.Errorf("pseudonym %q not recognized", a)
	}
	if IsPseudonym("alice") {
		t.Error("plain ID recognized as pseudonym")
	}
}

func TestPseudonymHidesIdentity(t *testing.T) {
	p := NewPseudonymizerWithKey([]byte("0123456789abcdef0123456789abcdef"))
	f := func(user string) bool {
		if user == "" {
			return true
		}
		ps := string(p.Pseudonym(UserID(user)))
		// The pseudonym must not embed the user ID.
		return !strings.Contains(ps, user) || len(user) <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPseudonymKeySeparation(t *testing.T) {
	a := NewPseudonymizerWithKey([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	b := NewPseudonymizerWithKey([]byte("bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"))
	if a.Pseudonym("alice") == b.Pseudonym("alice") {
		t.Error("different keys produced the same pseudonym")
	}
}

func TestPseudonymRandomKey(t *testing.T) {
	p, err := NewPseudonymizer()
	if err != nil {
		t.Fatal(err)
	}
	if !IsPseudonym(p.Pseudonym("carol")) {
		t.Error("pseudonym malformed")
	}
}

func TestPseudonymWorksWithGroupTableAndTokens(t *testing.T) {
	// End-to-end: group table and token service operate purely on
	// pseudonyms, so a compromised server never stores a real identity.
	p := NewPseudonymizerWithKey([]byte("0123456789abcdef0123456789abcdef"))
	svc := NewServiceWithKey([]byte("kkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkk"), 0)
	gt := NewGroupTable()

	alias := p.Pseudonym("alice")
	gt.Add(alias, 1)
	tok := svc.Issue(alias)

	got, err := svc.Verify(tok)
	if err != nil {
		t.Fatal(err)
	}
	if got != alias {
		t.Fatalf("verified %q, want pseudonym %q", got, alias)
	}
	if !gt.IsMember(got, 1) {
		t.Error("pseudonymous membership broken")
	}
	// The real name never appears in server-side state.
	for _, u := range gt.MembersOf(1) {
		if strings.Contains(string(u), "alice") {
			t.Error("real identity leaked into the group table")
		}
	}
}
