// Package auth simulates the enterprise-wide authentication service the
// paper assumes ("Kerberos or any other approach to authentication in
// distributed systems can be adopted here", §5.4.2) and the user-group
// metadata every index server keeps (Fig. 3).
//
// Tokens are HMAC-SHA256 MACs over the user ID and an expiry timestamp,
// issued by the central authentication service and verified independently
// by every index server that holds the service's verification key. The
// paper treats this service as trusted; any unforgeable-token scheme
// exercises the same code paths.
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"
)

// UserID identifies an enterprise user.
type UserID string

// Token is an opaque authentication credential presented with every
// index-server request.
type Token string

// Errors returned by token verification.
var (
	ErrInvalidToken = errors.New("auth: invalid token")
	ErrExpiredToken = errors.New("auth: expired token")
)

// Service issues and verifies tokens. It is safe for concurrent use
// (the key is immutable after construction).
type Service struct {
	key []byte
	ttl time.Duration
	now func() time.Time
}

// NewService creates a token service with a fresh random key and the
// given token lifetime (0 means one hour).
func NewService(ttl time.Duration) (*Service, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("auth: generating key: %w", err)
	}
	return NewServiceWithKey(key, ttl), nil
}

// NewServiceWithKey creates a token service with an explicit key, so that
// several index servers can share one verification key.
func NewServiceWithKey(key []byte, ttl time.Duration) *Service {
	if ttl <= 0 {
		ttl = time.Hour
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Service{key: k, ttl: ttl, now: time.Now}
}

// Key returns a copy of the verification key for distribution to servers.
func (s *Service) Key() []byte {
	k := make([]byte, len(s.key))
	copy(k, s.key)
	return k
}

// Issue creates a token for user, valid for the service's TTL.
func (s *Service) Issue(user UserID) Token {
	expiry := s.now().Add(s.ttl).Unix()
	var expBuf [8]byte
	binary.BigEndian.PutUint64(expBuf[:], uint64(expiry))
	mac := s.mac(string(user), expBuf[:])
	return Token(fmt.Sprintf("%s.%s.%s",
		base64.RawURLEncoding.EncodeToString([]byte(user)),
		base64.RawURLEncoding.EncodeToString(expBuf[:]),
		base64.RawURLEncoding.EncodeToString(mac)))
}

// Verify checks a token and returns the authenticated user.
func (s *Service) Verify(t Token) (UserID, error) {
	parts := strings.Split(string(t), ".")
	if len(parts) != 3 {
		return "", ErrInvalidToken
	}
	user, err := base64.RawURLEncoding.DecodeString(parts[0])
	if err != nil {
		return "", ErrInvalidToken
	}
	expBuf, err := base64.RawURLEncoding.DecodeString(parts[1])
	if err != nil || len(expBuf) != 8 {
		return "", ErrInvalidToken
	}
	mac, err := base64.RawURLEncoding.DecodeString(parts[2])
	if err != nil {
		return "", ErrInvalidToken
	}
	want := s.mac(string(user), expBuf)
	if subtle.ConstantTimeCompare(mac, want) != 1 {
		return "", ErrInvalidToken
	}
	expiry := time.Unix(int64(binary.BigEndian.Uint64(expBuf)), 0)
	if s.now().After(expiry) {
		return "", ErrExpiredToken
	}
	return UserID(user), nil
}

func (s *Service) mac(user string, exp []byte) []byte {
	h := hmac.New(sha256.New, s.key)
	h.Write([]byte(user))
	h.Write([]byte{0})
	h.Write(exp)
	return h.Sum(nil)
}
