package auth

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIssueVerifyRoundTrip(t *testing.T) {
	s, err := NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	tok := s.Issue("alice")
	user, err := s.Verify(tok)
	if err != nil {
		t.Fatal(err)
	}
	if user != "alice" {
		t.Errorf("verified user = %q, want alice", user)
	}
}

func TestVerifySharedKeyAcrossServers(t *testing.T) {
	// Several index servers verify tokens issued by the central service.
	central, err := NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServiceWithKey(central.Key(), time.Minute)
	tok := central.Issue("bob")
	user, err := server.Verify(tok)
	if err != nil || user != "bob" {
		t.Fatalf("cross-server verify = %q, %v", user, err)
	}
}

func TestForgedTokenRejected(t *testing.T) {
	s, err := NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// A token minted under a different key must not verify.
	if _, err := s.Verify(other.Issue("mallory")); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("foreign token: got %v, want ErrInvalidToken", err)
	}
}

func TestTamperedTokenRejected(t *testing.T) {
	s, err := NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	tok := string(s.Issue("alice"))
	// Swap the user part for another user (attempting privilege escalation).
	forged := strings.Replace(tok, tok[:strings.Index(tok, ".")], "Ym9i", 1) // "bob"
	if _, err := s.Verify(Token(forged)); err == nil {
		t.Error("tampered token verified")
	}
	// Garbage tokens.
	for _, bad := range []string{"", "a.b", "a.b.c.d", "!!!.###.$$$"} {
		if _, err := s.Verify(Token(bad)); err == nil {
			t.Errorf("garbage token %q verified", bad)
		}
	}
}

func TestExpiredTokenRejected(t *testing.T) {
	s := NewServiceWithKey([]byte("0123456789abcdef0123456789abcdef"), time.Minute)
	base := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return base }
	tok := s.Issue("alice")
	s.now = func() time.Time { return base.Add(2 * time.Minute) }
	if _, err := s.Verify(tok); !errors.Is(err, ErrExpiredToken) {
		t.Errorf("got %v, want ErrExpiredToken", err)
	}
}

func TestKeyIsCopied(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	s := NewServiceWithKey(key, time.Minute)
	tok := s.Issue("alice")
	key[0] ^= 0xFF // mutating the caller's slice must not affect the service
	if _, err := s.Verify(tok); err != nil {
		t.Error("service key aliased caller's slice")
	}
	got := s.Key()
	got[0] ^= 0xFF
	if _, err := s.Verify(s.Issue("bob")); err != nil {
		t.Error("Key() leaked internal slice")
	}
}

func TestGroupTableAddRemove(t *testing.T) {
	g := NewGroupTable()
	g.Add("alice", 1)
	g.Add("alice", 2)
	g.Add("bob", 1)

	if got := g.GroupsOf("alice"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("GroupsOf(alice) = %v", got)
	}
	if !g.IsMember("bob", 1) || g.IsMember("bob", 2) {
		t.Error("membership wrong")
	}
	if got := g.MembersOf(1); len(got) != 2 {
		t.Errorf("MembersOf(1) = %v", got)
	}
	if !g.Remove("alice", 1) {
		t.Error("Remove reported missing membership")
	}
	if g.Remove("alice", 1) {
		t.Error("double Remove reported success")
	}
	if g.IsMember("alice", 1) {
		t.Error("removed membership still visible")
	}
	if g.NumGroups() != 2 {
		t.Errorf("NumGroups = %d, want 2 (group 1 keeps bob, group 2 keeps alice)", g.NumGroups())
	}
}

func TestGroupTableImmediateRevocation(t *testing.T) {
	// §5.3: membership changes are immediately reflected.
	g := NewGroupTable()
	g.Add("carol", 7)
	set := g.GroupSetOf("carol")
	if _, ok := set[7]; !ok {
		t.Fatal("set missing group")
	}
	g.Remove("carol", 7)
	if _, ok := g.GroupSetOf("carol")[7]; ok {
		t.Error("revoked group still in set")
	}
	// Previously-fetched snapshots are unaffected (they are copies).
	if _, ok := set[7]; !ok {
		t.Error("GroupSetOf must return a snapshot copy")
	}
}

func TestGroupTableIdempotentAdd(t *testing.T) {
	g := NewGroupTable()
	g.Add("dave", 3)
	g.Add("dave", 3)
	if got := g.GroupsOf("dave"); len(got) != 1 {
		t.Errorf("GroupsOf after double add = %v", got)
	}
}

func TestGroupTableConcurrent(t *testing.T) {
	g := NewGroupTable()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u := UserID(rune('a' + i))
			for j := 0; j < 100; j++ {
				g.Add(u, GroupID(j%10))
				_ = g.GroupsOf(u)
				_ = g.GroupSetOf(u)
				if j%2 == 0 {
					g.Remove(u, GroupID(j%10))
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestNumGroupsAfterEmptied(t *testing.T) {
	g := NewGroupTable()
	g.Add("x", 1)
	g.Remove("x", 1)
	if g.NumGroups() != 0 {
		t.Errorf("NumGroups = %d, want 0 after last member leaves", g.NumGroups())
	}
	if got := g.GroupsOf("x"); len(got) != 0 {
		t.Errorf("GroupsOf(x) = %v, want empty", got)
	}
}
