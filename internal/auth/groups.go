package auth

import (
	"sort"
	"sync"
)

// GroupID identifies a collaboration group. Documents are shared with one
// group; users belong to a (small, §2) set of groups.
type GroupID uint32

// GroupTable is the user-group metadata each index server records
// (paper Fig. 3). Membership changes take effect immediately: "To add or
// remove a user from a group, only the table containing the user-group
// metadata needs to be updated" (§5.3).
//
// GroupTable is safe for concurrent use.
type GroupTable struct {
	mu      sync.RWMutex
	byUser  map[UserID]map[GroupID]struct{}
	byGroup map[GroupID]map[UserID]struct{}
}

// NewGroupTable returns an empty table.
func NewGroupTable() *GroupTable {
	return &GroupTable{
		byUser:  make(map[UserID]map[GroupID]struct{}),
		byGroup: make(map[GroupID]map[UserID]struct{}),
	}
}

// Add puts user into group (idempotent).
func (g *GroupTable) Add(user UserID, group GroupID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.byUser[user] == nil {
		g.byUser[user] = make(map[GroupID]struct{})
	}
	g.byUser[user][group] = struct{}{}
	if g.byGroup[group] == nil {
		g.byGroup[group] = make(map[UserID]struct{})
	}
	g.byGroup[group][user] = struct{}{}
}

// Remove takes user out of group; it reports whether the membership
// existed. Future queries by the user immediately stop seeing the group's
// posting elements.
func (g *GroupTable) Remove(user UserID, group GroupID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.byUser[user][group]; !ok {
		return false
	}
	delete(g.byUser[user], group)
	if len(g.byUser[user]) == 0 {
		delete(g.byUser, user)
	}
	delete(g.byGroup[group], user)
	if len(g.byGroup[group]) == 0 {
		delete(g.byGroup, group)
	}
	return true
}

// GroupsOf returns the sorted groups of a user. This is the O(N) group
// lookup performed per query (§5.4.2).
func (g *GroupTable) GroupsOf(user UserID) []GroupID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]GroupID, 0, len(g.byUser[user]))
	for gid := range g.byUser[user] {
		out = append(out, gid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupSetOf returns the user's groups as a set for O(1) membership
// filtering during posting-list scans.
func (g *GroupTable) GroupSetOf(user UserID) map[GroupID]struct{} {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[GroupID]struct{}, len(g.byUser[user]))
	for gid := range g.byUser[user] {
		out[gid] = struct{}{}
	}
	return out
}

// MembersOf returns the sorted members of a group.
func (g *GroupTable) MembersOf(group GroupID) []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]UserID, 0, len(g.byGroup[group]))
	for u := range g.byGroup[group] {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMember reports whether user belongs to group.
func (g *GroupTable) IsMember(user UserID, group GroupID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.byUser[user][group]
	return ok
}

// NumGroups returns the number of non-empty groups.
func (g *GroupTable) NumGroups() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byGroup)
}
