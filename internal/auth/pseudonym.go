package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Pseudonymizer derives stable opaque user IDs, implementing the §7.1
// extension: "If Alice takes over a server, she can learn who sends each
// new query/update to that server; to prevent this, one would need to
// extend Zerber to include only opaque user IDs in requests and in the
// user-group mapping."
//
// The pseudonym is a truncated HMAC-SHA256 of the real user ID under a
// key known only to the enterprise authentication service. Index servers
// store and see only pseudonyms; linking a pseudonym back to a person
// requires the pseudonym key. Pseudonyms are stable so the group table
// still works, which means an adversary can track one pseudonym's
// activity over time — full unlinkability additionally needs MIX-style
// transport (§4).
type Pseudonymizer struct {
	key []byte
}

// NewPseudonymizer creates a pseudonymizer with a fresh random key.
func NewPseudonymizer() (*Pseudonymizer, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("auth: generating pseudonym key: %w", err)
	}
	return NewPseudonymizerWithKey(key), nil
}

// NewPseudonymizerWithKey creates a pseudonymizer with an explicit key
// (for tests and for sharing across the auth service replicas).
func NewPseudonymizerWithKey(key []byte) *Pseudonymizer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Pseudonymizer{key: k}
}

// Pseudonym returns the opaque ID for a user. It is deterministic: the
// same user always maps to the same pseudonym.
func (p *Pseudonymizer) Pseudonym(user UserID) UserID {
	h := hmac.New(sha256.New, p.key)
	h.Write([]byte(user))
	return UserID("p:" + hex.EncodeToString(h.Sum(nil)[:16]))
}

// IsPseudonym reports whether an ID is in the pseudonym namespace.
func IsPseudonym(u UserID) bool {
	return len(u) == 2+32 && u[0] == 'p' && u[1] == ':'
}
