package zerber_test

import (
	"fmt"
	"math/rand"
	"testing"

	"zerber"
	"zerber/internal/peer"
	"zerber/internal/sim"
)

// TestTopKMatchesPlainIndex is the end-to-end property test of the
// early-terminating retrieval protocol: on randomized corpora,
// memberships, and mutation scripts, a TopKMode searcher must return
// exactly the scored top k of the trusted plain-index oracle — same
// documents, same frequency-sum scores, same tie order — for every
// user, query shape, and cut, even with a tiny block size forcing the
// TA loop through many rounds. Early termination must be invisible in
// the answer.
func TestTopKMatchesPlainIndex(t *testing.T) {
	vocabulary := []string{
		"martha", "imclone", "layoff", "merger", "budget", "meeting",
		"status", "compound", "process", "suitor", "review", "draft",
	}
	users := []zerber.UserID{"u0", "u1", "u2"}
	numGroups := 3

	trials := tierCount(2, 4, 15)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4200 + trial)))

		dfs := make(map[string]int)
		for i, term := range vocabulary {
			dfs[term] = len(vocabulary) - i
		}
		c, err := zerber.NewCluster(dfs, zerber.Options{
			Seed: int64(trial), M: 1 + trial%4,
			Heuristic: []zerber.Heuristic{zerber.DFM, zerber.BFM, zerber.UDM}[trial%3],
			R:         2,
			TopKMode:  true,
			BlockSize: 1 + trial%3,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle := sim.NewOracle()
		for _, u := range users {
			joined := 0
			for g := 1; g <= numGroups; g++ {
				if rng.Intn(2) == 0 || joined == 0 && g == numGroups {
					c.AddUser(u, zerber.GroupID(g))
					oracle.AddUser(u, zerber.GroupID(g))
					joined++
				}
			}
		}
		owner := users[0]
		for g := 1; g <= numGroups; g++ {
			if !oracle.Member(owner, zerber.GroupID(g)) {
				c.AddUser(owner, zerber.GroupID(g))
				oracle.AddUser(owner, zerber.GroupID(g))
			}
		}
		ownerTok := c.IssueToken(owner)

		site, err := c.NewPeer(fmt.Sprintf("topk-site%d", trial), int64(trial+1))
		if err != nil {
			t.Fatal(err)
		}
		searcher, err := c.Searcher()
		if err != nil {
			t.Fatal(err)
		}

		live := map[uint32]bool{}
		randDoc := func(id uint32) peer.Document {
			// Repeated draws give documents term frequencies above 1, so
			// ranking exercises distinct impact buckets, not just presence.
			n := 2 + rng.Intn(10)
			content := ""
			for i := 0; i < n; i++ {
				content += vocabulary[rng.Intn(len(vocabulary))] + " "
			}
			return peer.Document{
				ID: id, Content: content, Group: zerber.GroupID(1 + rng.Intn(numGroups)),
			}
		}

		check := func(step string) {
			t.Helper()
			for _, u := range users {
				tok := c.IssueToken(u)
				qn := 1 + rng.Intn(3)
				query := make([]string, qn)
				for i := range query {
					query[i] = vocabulary[rng.Intn(len(vocabulary))]
				}
				for _, k := range []int{1, 3, 1000} {
					got, stats, err := searcher.SearchStats(tok, query, k)
					if err != nil {
						t.Fatalf("trial %d %s: top-k search: %v", trial, step, err)
					}
					want := oracle.ExpectedTopK(u, query, k)
					if len(got) != len(want) {
						t.Fatalf("trial %d %s: user %s query %v k=%d: %d results, oracle %d",
							trial, step, u, query, k, len(got), len(want))
					}
					for i := range got {
						if got[i].DocID != want[i].DocID || got[i].Score != want[i].Score {
							t.Fatalf("trial %d %s: user %s query %v k=%d rank %d: doc %d score %v, oracle doc %d score %v",
								trial, step, u, query, k, i, got[i].DocID, got[i].Score, want[i].DocID, want[i].Score)
						}
					}
					if len(got) > 0 && stats.TA.Depth == 0 {
						t.Fatalf("trial %d %s: TA stats not recorded: %+v", trial, step, stats)
					}
				}
			}
		}

		nextID := uint32(1)
		for step := 0; step < 20; step++ {
			switch op := rng.Intn(4); {
			case op <= 1 || len(live) == 0: // insert
				doc := randDoc(nextID)
				nextID++
				if err := site.IndexDocument(ownerTok, doc); err != nil {
					t.Fatal(err)
				}
				oracle.Index(doc.ID, doc.Content, doc.Group)
				live[doc.ID] = true
			case op == 2: // update
				id := anyOf(rng, live)
				doc := randDoc(id)
				g, _ := oracle.GroupOf(id)
				doc.Group = g
				if err := site.UpdateDocument(ownerTok, doc); err != nil {
					t.Fatal(err)
				}
				oracle.Index(id, doc.Content, g)
			case op == 3: // delete
				id := anyOf(rng, live)
				if err := site.DeleteDocument(ownerTok, id); err != nil {
					t.Fatal(err)
				}
				oracle.Remove(id)
				delete(live, id)
			}
			if step%5 == 4 {
				check(fmt.Sprintf("step %d", step))
			}
		}
		check("final")
	}
}
