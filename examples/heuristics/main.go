// Heuristics: compares the three merging strategies of paper §6 (DFM,
// BFM, UDM) on a synthetic Zipfian corpus — the confidentiality each
// achieves (formula (7)), what it costs in query workload (formula (6)),
// and where the overhead lands (formula (9)).
//
//	go run ./examples/heuristics
//
// This is the trade-off a deployment has to make when choosing r and M.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"zerber/internal/confidential"
	"zerber/internal/corpus"
	"zerber/internal/merging"
	"zerber/internal/workload"
)

func main() {
	// A Zipfian corpus and a correlated query log, like the paper's ODP
	// data plus web query log.
	c := corpus.SyntheticODP(corpus.ODPConfig{
		Seed: 11, NumDocs: 5000, VocabSize: 20000, NumGroups: 20,
	})
	dfs := c.DocFreqs()
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		log.Fatal(err)
	}
	ranked := dist.TermsByProbability()
	qlog := corpus.SyntheticQueryLog(corpus.QueryLogConfig{Seed: 12, NumQueries: 50000}, ranked)
	stats := workload.TermStats{DocFreq: dfs, QueryFreq: qlog.TermFreq}

	fmt.Printf("corpus: %d docs, %d terms, %d postings; %d queries\n\n",
		len(c.Docs), len(ranked), c.TotalPostings(), len(qlog.Queries))

	baseline := workload.UnmergedCost(stats)
	fmt.Printf("ordinary inverted index workload cost (formula 6): %.3e\n\n", baseline)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tM\tresulting r\t1/r\tworkload cost\tvs plain\tmedian eff")
	for _, m := range []int{64, 256, 1024} {
		for _, h := range []merging.Heuristic{merging.DFM, merging.BFM, merging.UDM} {
			opts := merging.Options{Heuristic: h, M: m, R: float64(m) * 2, Seed: 13}
			if h == merging.BFM {
				// BFM discovers M from r; feed it a target that lands in
				// the same neighborhood.
				opts.M = 0
				opts.R = float64(m)
			}
			table, err := merging.Build(dist, opts)
			if err != nil {
				log.Fatal(err)
			}
			cost := workload.TotalCost(table, stats)
			effs := workload.QRatioEffAll(table, stats)
			median := 0.0
			if len(effs) > 0 {
				median = effs[len(effs)/2]
			}
			fmt.Fprintf(w, "%s\t%d\t%.4g\t%.3e\t%.3e\t%.2fx\t%.3f\n",
				h, table.M(), table.RValue(), table.MinMass(), cost, cost/baseline, median)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - smaller r  = stronger confidentiality (r=1 leaks nothing beyond background)")
	fmt.Println("  - larger M   = cheaper queries but weaker confidentiality (Fig. 8)")
	fmt.Println("  - UDM merges even the hottest terms: better protection for them,")
	fmt.Println("    but low-DF queries pay more (Fig. 10) — visible in the median efficiency")
}
