// Adversary: simulates the paper's threat model (§4, §7.1). Alice takes
// over one of the three index servers and tries each attack the paper
// enumerates; the example shows what she sees and verifies the
// r-confidentiality bound empirically.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"sort"

	"zerber"
	"zerber/internal/confidential"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/shamir"
)

func main() {
	// Corpus statistics = the adversary's background knowledge B.
	docFreqs := map[string]int{
		"report": 40, "meeting": 35, "budget": 30, "status": 25,
		"project": 20, "team": 15, "merger": 6, "suitor": 3,
		"hesselhofer": 1, // the rare name Alice wants to confirm
	}
	cluster, err := zerber.NewCluster(docFreqs, zerber.Options{
		N: 3, K: 2, Heuristic: zerber.UDM, M: 3, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.AddUser("owner", 1)
	tok := cluster.IssueToken("owner")
	site, err := cluster.NewPeer("site", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Index documents; one contains the sensitive rare term.
	batch := site.NewBatch()
	contents := []string{
		"report meeting budget status",
		"project team status report",
		"merger suitor meeting",
		"budget report project hesselhofer", // the secret
		"team meeting status budget report",
	}
	for i, text := range contents {
		if err := batch.Add(peer.Document{ID: uint32(i + 1), Content: text, Group: 1}); err != nil {
			log.Fatal(err)
		}
	}
	if err := batch.Flush(tok); err != nil {
		log.Fatal(err)
	}

	// ---- Alice compromises server 0. --------------------------------
	compromised := cluster.Servers()[0]
	fmt.Println("Alice has root on", compromised.Name())

	// Attack 1 (§4): learn per-term document frequencies. She sees only
	// merged list lengths.
	fmt.Println("\n[attack 1] posting list lengths visible to Alice:")
	lengths := compromised.ListLengths()
	var lids []int
	for lid := range lengths {
		lids = append(lids, int(lid))
	}
	sort.Ints(lids)
	for _, lid := range lids {
		fmt.Printf("  merged list %d: %d elements (sum over ALL merged terms)\n", lid, lengths[merging.ListID(lid)])
	}
	fmt.Println("  -> no per-term document frequency is recoverable: each list mixes several terms")

	// Attack 2 (§4): confirm "hesselhofer" is indexed. The mapping table
	// tells her which list the term WOULD be in, but the elements are
	// secret-shared and the list also carries other terms' elements.
	table := cluster.Table()
	lid := table.ListOf("hesselhofer")
	fmt.Printf("\n[attack 2] 'hesselhofer' maps to list %d; Alice inspects its %d shares:\n",
		lid, len(compromised.Store().List(lid)))
	for i, sh := range compromised.Store().List(lid) {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  element %x: share value %d (uniform in Z_p)\n", sh.GlobalID, sh.Y.Uint64())
	}

	// Quantify her gain with the r-confidentiality bound (Definition 1).
	dist, err := confidential.NewDistribution(docFreqs)
	if err != nil {
		log.Fatal(err)
	}
	members := table.Members(dist.TermsByProbability())
	var mass float64
	for _, term := range members[lid] {
		mass += dist.P(term)
	}
	prior := dist.P("hesselhofer")
	posterior := prior / mass
	fmt.Printf("  prior P(element is 'hesselhofer') from background B: %.4f\n", prior)
	fmt.Printf("  posterior given the merged list:                     %.4f\n", posterior)
	fmt.Printf("  amplification %.2f <= table r-value %.2f  (Definition 1 holds)\n",
		posterior/prior, table.RValue())

	// Attack 3 (§5.1): reconstruct a posting element from one server's
	// share alone — information-theoretically impossible: every candidate
	// secret is consistent with the share.
	sh := compromised.Store().List(lid)[0]
	x := compromised.XCoord()
	fmt.Println("\n[attack 3] single-share reconstruction:")
	for _, guess := range []uint64{0, 424242, 1 << 59} {
		slope := field.Div(field.Sub(sh.Y, field.New(guess)), x)
		poly := field.Poly{field.New(guess), slope}
		fmt.Printf("  candidate secret %d: consistent witness polynomial exists (f(%d)=%d)\n",
			guess, x, poly.Eval(x).Uint64())
	}
	fmt.Println("  -> the share rules out NOTHING; k=2 shares from distinct servers are required")

	// Defense in depth (§5.1): proactive resharing makes Alice's stolen
	// shares useless even if she later compromises a second server.
	fmt.Println("\n[defense] proactive resharing:")
	xs := []field.Element{1, 2, 3}
	secret := field.Element(777)
	shares, err := shamir.Split(secret, 2, xs, nil)
	if err != nil {
		log.Fatal(err)
	}
	stolen := shares[0]
	deltas, err := shamir.Refresh(2, xs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := shamir.ApplyRefresh(shares, deltas)
	if err != nil {
		log.Fatal(err)
	}
	wrong, err := shamir.Reconstruct([]shamir.Share{stolen, fresh[1]}, 2)
	if err != nil {
		log.Fatal(err)
	}
	right, err := shamir.Reconstruct([]shamir.Share{fresh[0], fresh[1]}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  stolen+fresh shares -> %d (garbage); fresh+fresh -> %d (correct)\n",
		wrong.Uint64(), right.Uint64())
}
