// DHT: the §3 future-work extension — r-confidential indexing over a
// DHT-based infrastructure, where each physical node stores only a
// fraction of the index.
//
//	go run ./examples/dht
//
// Layout: k=2 secret sharing means two share slots; each slot is a
// consistent-hashing ring of physical nodes. Clients and peers talk to
// the slots exactly as they would to monolithic index servers; the
// routing, node joins, and data migration are invisible to them.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"zerber/internal/auth"
	"zerber/internal/client"
	"zerber/internal/confidential"
	"zerber/internal/dht"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/server"
	"zerber/internal/transport"
	"zerber/internal/vocab"
)

func main() {
	svc, err := auth.NewService(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	groups := auth.NewGroupTable()
	groups.Add("alice", 1)

	// Corpus statistics and public structures.
	dfs := map[string]int{}
	for i := 0; i < 200; i++ {
		dfs[fmt.Sprintf("term%03d", i)] = 200 - i
	}
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		log.Fatal(err)
	}
	table, err := merging.Build(dist, merging.Options{Heuristic: merging.DFM, M: 32, R: 64})
	if err != nil {
		log.Fatal(err)
	}
	voc := vocab.NewFromTerms(table.ListedTerms())

	// Two share slots (k=2), three physical nodes each.
	newNode := func(slot, n int, x field.Element) *server.Server {
		return server.New(server.Config{
			Name: fmt.Sprintf("slot%d-node%d", slot, n), X: x, Auth: svc, Groups: groups,
		})
	}
	var slots []*dht.Slot
	var apis []transport.API
	for s := 0; s < 2; s++ {
		x := field.Element(s + 1)
		slot, err := dht.NewSlot(x, 32)
		if err != nil {
			log.Fatal(err)
		}
		for n := 0; n < 3; n++ {
			if err := slot.AddNode(fmt.Sprintf("node%d", n), newNode(s, n, x)); err != nil {
				log.Fatal(err)
			}
		}
		slots = append(slots, slot)
		apis = append(apis, slot)
	}

	// Index documents through the DHT (the peer cannot tell).
	p, err := peer.New(peer.Config{
		Name: "site", Servers: apis, K: 2, Table: table, Vocab: voc,
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	tok := svc.Issue("alice")
	batch := p.NewBatch()
	for d := 1; d <= 30; d++ {
		content := ""
		for i := d % 5; i < 200; i += 5 {
			content += fmt.Sprintf("term%03d ", i)
		}
		if err := batch.Add(peer.Document{ID: uint32(d), Content: content, Group: 1}); err != nil {
			log.Fatal(err)
		}
	}
	if err := batch.Flush(tok); err != nil {
		log.Fatal(err)
	}

	show := func(header string) {
		fmt.Println(header)
		for si, slot := range slots {
			distb := slot.ListDistribution()
			names := make([]string, 0, len(distb))
			for n := range distb {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Printf("  slot %d (x=%d): ", si, slot.XCoord())
			for _, n := range names {
				fmt.Printf("%s=%d lists  ", n, distb[n])
			}
			fmt.Println()
		}
	}
	show("--- index fractions per physical node ---")

	cl, err := client.New(apis, 2, table, voc)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := cl.Search(tok, []string{"term000"}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch over the DHT: %d documents match term000\n\n", len(res))

	// A node joins slot 0: lists it now owns migrate automatically.
	if err := slots[0].AddNode("node3", newNode(0, 3, slots[0].XCoord())); err != nil {
		log.Fatal(err)
	}
	show("--- after node3 joins slot 0 (lists migrated) ---")
	res2, _, err := cl.Search(tok, []string{"term000"}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch still returns %d documents\n\n", len(res2))

	// A node leaves: its lists migrate to the survivors.
	if err := slots[0].RemoveNode("node1"); err != nil {
		log.Fatal(err)
	}
	show("--- after node1 leaves slot 0 ---")
	res3, _, err := cl.Search(tok, []string{"term000"}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch still returns %d documents\n", len(res3))
}
