// Quickstart: a 3-server Zerber cluster with one document owner and one
// searcher, all in-process.
//
//	go run ./examples/quickstart
//
// It walks the whole pipeline: cluster setup from corpus statistics,
// group membership, indexing, ranked search with snippets, and the
// no-key-management revocation story.
package main

import (
	"fmt"
	"log"

	"zerber"
	"zerber/internal/peer"
)

func main() {
	// 1. Corpus statistics (normally learned from an initial crawl; the
	//    paper uses the first 30% of documents). They drive the merging
	//    table that hides per-term document frequencies.
	docFreqs := map[string]int{
		"the": 90, "project": 55, "budget": 40, "meeting": 30, "report": 25,
		"martha": 12, "imclone": 6, "layoff": 5, "merger": 4, "chemical": 3,
	}

	// 2. A cluster: n=3 index servers, k=2 secret sharing (any 2 servers
	//    reconstruct; 1 compromised server learns nothing).
	cluster, err := zerber.NewCluster(docFreqs, zerber.Options{N: 3, K: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d servers, k=%d, merging r=%.3g\n",
		cluster.N(), cluster.K(), cluster.RValue())

	// 3. Group membership — the only administration Zerber needs.
	cluster.AddUser("alice", 1)
	cluster.AddUser("bob", 1)
	aliceTok := cluster.IssueToken("alice")
	bobTok := cluster.IssueToken("bob")

	// 4. Alice's machine indexes her documents for group 1.
	site, err := cluster.NewPeer("alice-laptop", 0) // 0 = crypto randomness
	if err != nil {
		log.Fatal(err)
	}
	docs := []peer.Document{
		{ID: 1, Name: "memo.eml", Group: 1,
			Content: "Martha sold her ImClone shares the day before the layoff announcement."},
		{ID: 2, Name: "q3.doc", Group: 1,
			Content: "The project budget meeting moved to Thursday; merger still pending."},
		{ID: 3, Name: "lab.txt", Group: 1,
			Content: "Chemical trials for the new compound start after the budget review."},
	}
	batch := site.NewBatch() // batching hides cross-document correlations
	for _, d := range docs {
		if err := batch.Add(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := batch.Flush(aliceTok); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents from %s\n", len(docs), "alice-laptop")

	// 5. Bob searches. The index servers never see his terms (only
	//    merged posting-list IDs) nor any plaintext postings.
	searcher, err := cluster.Searcher()
	if err != nil {
		log.Fatal(err)
	}
	for _, query := range [][]string{{"imclone"}, {"budget", "merger"}} {
		results, err := searcher.Search(bobTok, query, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %v -> %d hit(s)\n", query, len(results))
		for i, r := range results {
			fmt.Printf("  %d. doc %d (score %.3f) @ %s\n     %s\n",
				i+1, r.DocID, r.Score, r.Peer, r.Snippet)
		}
	}

	// 6. Revocation: drop Bob from the group — no keys to rotate, no
	//    re-encryption; his next query simply returns nothing.
	cluster.RemoveUser("bob", 1)
	results, err := searcher.Search(bobTok, []string{"imclone"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter revocation, bob's query returns %d results\n", len(results))
}
