// Operations: running Zerber in anger — crash recovery from the
// write-ahead log, exactly-once peer mutations recovered from the
// mutation journal, proactive share resharing, and tamper-detecting
// verified retrieval.
//
//	go run ./examples/operations
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"zerber/internal/auth"
	"zerber/internal/client"
	"zerber/internal/confidential"
	"zerber/internal/durable"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/posting"
	"zerber/internal/proactive"
	"zerber/internal/server"
	"zerber/internal/transport"
	"zerber/internal/vocab"
)

func main() {
	dir, err := os.MkdirTemp("", "zerber-ops")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	svc, err := auth.NewService(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	groups := auth.NewGroupTable()
	groups.Add("alice", 1)

	dfs := map[string]int{"martha": 5, "imclone": 4, "layoff": 3, "merger": 2, "budget": 1}
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		log.Fatal(err)
	}
	table, err := merging.Build(dist, merging.Options{Heuristic: merging.UDM, M: 2})
	if err != nil {
		log.Fatal(err)
	}
	voc := vocab.NewFromTerms(table.ListedTerms())

	open := func(i int) *durable.Server {
		s, err := durable.Open(server.Config{
			Name: fmt.Sprintf("ix%d", i), X: field.Element(i + 1), Auth: svc, Groups: groups,
		}, filepath.Join(dir, fmt.Sprintf("ix%d.wal", i)))
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	// --- 1. Durable cluster + indexing ------------------------------
	servers := []*durable.Server{open(0), open(1), open(2)}
	apis := []transport.API{servers[0], servers[1], servers[2]}
	p, err := peer.New(peer.Config{
		Name: "site", Servers: apis, K: 2, Table: table, Vocab: voc,
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	tok := svc.Issue("alice")
	if err := p.IndexDocument(tok, peer.Document{ID: 1, Content: "martha imclone layoff", Group: 1}); err != nil {
		log.Fatal(err)
	}
	if err := p.IndexDocument(tok, peer.Document{ID: 2, Content: "merger budget", Group: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed 2 documents; each server logs its shares (WAL per server)\n")

	// --- 2. Crash and recover ----------------------------------------
	for _, s := range servers {
		s.Close() // power cut
	}
	servers = []*durable.Server{open(0), open(1), open(2)}
	apis = []transport.API{servers[0], servers[1], servers[2]}
	fmt.Printf("after crash: recovered %d/%d/%d log records per server\n",
		servers[0].Recovered, servers[1].Recovered, servers[2].Recovered)

	cl, err := client.New(apis, 2, table, voc)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := cl.Search(tok, []string{"imclone"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-recovery search for 'imclone': %d hit(s)\n\n", len(res))

	// --- 2b. Peer crash mid-update: journaled, exactly-once recovery --
	// An update inserts its fresh elements on every server before
	// deleting the superseded ones, and a journaled peer persists the
	// whole operation before the first send. Kill the owner between the
	// two stages, restart it on its journal, and Recover() converges:
	// no orphaned elements, and the new document is indexed exactly once.
	flaky := &failDeleteOnce{API: apis[1]}
	japis := []transport.API{apis[0], flaky, apis[2]}
	jpath := filepath.Join(dir, "site2.journal")
	newSite2 := func() *peer.Peer {
		p2, err := peer.New(peer.Config{
			Name: "site2", Servers: japis, K: 2, Table: table, Vocab: voc,
			Rand: rand.New(rand.NewSource(2)), JournalPath: jpath,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p2
	}
	p2 := newSite2()
	if err := p2.IndexDocument(tok, peer.Document{ID: 10, Content: "merger budget", Group: 1}); err != nil {
		log.Fatal(err)
	}
	err = p2.UpdateDocument(tok, peer.Document{ID: 10, Content: "merger layoff", Group: 1})
	fmt.Printf("update interrupted between stages: %v\n", err)
	fmt.Printf("elements per server mid-crash: %d/%d/%d (old+new generations coexist; nothing lost)\n",
		servers[0].Inner().TotalElements(), servers[1].Inner().TotalElements(), servers[2].Inner().TotalElements())
	p2.Close() // power cut on the owner's machine

	p2 = newSite2()
	fmt.Printf("after restart: %d in-flight mutation journaled\n", p2.PendingOps())
	done, err := p2.Recover(tok)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Recover() completed %d op(s); elements per server: %d/%d/%d (superseded generation gone)\n",
		done,
		servers[0].Inner().TotalElements(), servers[1].Inner().TotalElements(), servers[2].Inner().TotalElements())
	res, _, err = cl.Search(tok, []string{"layoff"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, r := range res {
		if r.DocID == 10 {
			hits++
		}
	}
	fmt.Printf("search for the updated term finds doc 10 exactly once: %d hit(s)\n\n", hits)
	defer p2.Close()

	// --- 3. Proactive resharing --------------------------------------
	inner := []*server.Server{servers[0].Inner(), servers[1].Inner(), servers[2].Inner()}
	var lid merging.ListID
	for l := range inner[0].ListLengths() {
		lid = l
		break
	}
	stolen := inner[0].Store().List(lid) // adversary snapshots server 0 today
	// What the stolen share + a current server-1 share decode to, before
	// and after the refresh.
	xs := []field.Element{inner[0].XCoord(), inner[1].XCoord()}
	decodeMix := func() posting.Element {
		freshByID := map[posting.GlobalID]posting.EncryptedShare{}
		for _, sh := range inner[1].Store().List(lid) {
			freshByID[sh.GlobalID] = sh
		}
		elem, err := posting.Decrypt(
			[]posting.EncryptedShare{stolen[0], freshByID[stolen[0].GlobalID]}, xs, 2)
		if err != nil {
			log.Fatal(err)
		}
		return elem
	}
	before := decodeMix()
	n, err := proactive.Reshare(inner, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	after := decodeMix()
	fmt.Printf("proactive resharing refreshed %d elements\n", n)
	fmt.Printf("stolen+current share decode before refresh: [%v] (real element)\n", before)
	fmt.Printf("stolen+current share decode after  refresh: [%v] (garbage)\n", after)
	res, _, err = cl.Search(tok, []string{"imclone"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search still works after resharing: %d hit(s)\n\n", len(res))

	// --- 4. Verified retrieval ---------------------------------------
	if err := cl.EnableVerification(); err != nil {
		log.Fatal(err)
	}
	res, stats, err := cl.Search(tok, []string{"martha"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified retrieval: %d hit(s); %d elements cross-checked against two share subsets (k+1=%d servers)\n",
		len(res), stats.ElementsVerified, stats.ServersQueried)
	for _, s := range servers {
		s.Close()
	}
}

// failDeleteOnce drops the first delete-stage Apply on its way to the
// wrapped server: the outage that interrupts an update exactly between
// its insert and delete stages.
type failDeleteOnce struct {
	transport.API
	failed bool
}

func (f *failDeleteOnce) Apply(ctx context.Context, tok auth.Token, op transport.OpID, inserts []transport.InsertOp, deletes []transport.DeleteOp) error {
	if !f.failed && op.Stage == transport.StageDelete {
		f.failed = true
		return errors.New("injected outage")
	}
	return f.API.Apply(ctx, tok, op, inserts, deletes)
}
