// Operations: running Zerber in anger — crash recovery from the
// write-ahead log, proactive share resharing, and tamper-detecting
// verified retrieval.
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"zerber/internal/auth"
	"zerber/internal/client"
	"zerber/internal/confidential"
	"zerber/internal/durable"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/posting"
	"zerber/internal/proactive"
	"zerber/internal/server"
	"zerber/internal/transport"
	"zerber/internal/vocab"
)

func main() {
	dir, err := os.MkdirTemp("", "zerber-ops")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	svc, err := auth.NewService(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	groups := auth.NewGroupTable()
	groups.Add("alice", 1)

	dfs := map[string]int{"martha": 5, "imclone": 4, "layoff": 3, "merger": 2, "budget": 1}
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		log.Fatal(err)
	}
	table, err := merging.Build(dist, merging.Options{Heuristic: merging.UDM, M: 2})
	if err != nil {
		log.Fatal(err)
	}
	voc := vocab.NewFromTerms(table.ListedTerms())

	open := func(i int) *durable.Server {
		s, err := durable.Open(server.Config{
			Name: fmt.Sprintf("ix%d", i), X: field.Element(i + 1), Auth: svc, Groups: groups,
		}, filepath.Join(dir, fmt.Sprintf("ix%d.wal", i)))
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	// --- 1. Durable cluster + indexing ------------------------------
	servers := []*durable.Server{open(0), open(1), open(2)}
	apis := []transport.API{servers[0], servers[1], servers[2]}
	p, err := peer.New(peer.Config{
		Name: "site", Servers: apis, K: 2, Table: table, Vocab: voc,
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	tok := svc.Issue("alice")
	if err := p.IndexDocument(tok, peer.Document{ID: 1, Content: "martha imclone layoff", Group: 1}); err != nil {
		log.Fatal(err)
	}
	if err := p.IndexDocument(tok, peer.Document{ID: 2, Content: "merger budget", Group: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed 2 documents; each server logs its shares (WAL per server)\n")

	// --- 2. Crash and recover ----------------------------------------
	for _, s := range servers {
		s.Close() // power cut
	}
	servers = []*durable.Server{open(0), open(1), open(2)}
	apis = []transport.API{servers[0], servers[1], servers[2]}
	fmt.Printf("after crash: recovered %d/%d/%d log records per server\n",
		servers[0].Recovered, servers[1].Recovered, servers[2].Recovered)

	cl, err := client.New(apis, 2, table, voc)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := cl.Search(tok, []string{"imclone"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-recovery search for 'imclone': %d hit(s)\n\n", len(res))

	// --- 3. Proactive resharing --------------------------------------
	inner := []*server.Server{servers[0].Inner(), servers[1].Inner(), servers[2].Inner()}
	var lid merging.ListID
	for l := range inner[0].ListLengths() {
		lid = l
		break
	}
	stolen := inner[0].Store().List(lid) // adversary snapshots server 0 today
	// What the stolen share + a current server-1 share decode to, before
	// and after the refresh.
	xs := []field.Element{inner[0].XCoord(), inner[1].XCoord()}
	decodeMix := func() posting.Element {
		freshByID := map[posting.GlobalID]posting.EncryptedShare{}
		for _, sh := range inner[1].Store().List(lid) {
			freshByID[sh.GlobalID] = sh
		}
		elem, err := posting.Decrypt(
			[]posting.EncryptedShare{stolen[0], freshByID[stolen[0].GlobalID]}, xs, 2)
		if err != nil {
			log.Fatal(err)
		}
		return elem
	}
	before := decodeMix()
	n, err := proactive.Reshare(inner, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	after := decodeMix()
	fmt.Printf("proactive resharing refreshed %d elements\n", n)
	fmt.Printf("stolen+current share decode before refresh: [%v] (real element)\n", before)
	fmt.Printf("stolen+current share decode after  refresh: [%v] (garbage)\n", after)
	res, _, err = cl.Search(tok, []string{"imclone"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search still works after resharing: %d hit(s)\n\n", len(res))

	// --- 4. Verified retrieval ---------------------------------------
	if err := cl.EnableVerification(); err != nil {
		log.Fatal(err)
	}
	res, stats, err := cl.Search(tok, []string{"martha"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified retrieval: %d hit(s); %d elements cross-checked against two share subsets (k+1=%d servers)\n",
		len(res), stats.ElementsVerified, stats.ServersQueried)
	for _, s := range servers {
		s.Close()
	}
}
