// Enterprise: the paper's motivating scenario (§2) — many collaboration
// groups with churning membership, multiple document-owner sites, and
// overlapping access, on one shared set of largely-untrusted index
// servers.
//
//	go run ./examples/enterprise
//
// It simulates three project groups across two sites, exercises
// overlapping membership, document updates with minimal network traffic,
// and mid-project membership changes — all without any key management.
package main

import (
	"fmt"
	"log"

	"zerber"
	"zerber/internal/peer"
)

const (
	groupChemical zerber.GroupID = 1 // R&D: new chemical process
	groupMerger   zerber.GroupID = 2 // executives: acquisition talks
	groupCourse   zerber.GroupID = 3 // internal training course
)

func main() {
	docFreqs := map[string]int{
		"the": 200, "process": 60, "report": 55, "draft": 50, "review": 45,
		"compound": 20, "catalyst": 15, "merger": 12, "valuation": 10,
		"suitor": 8, "syllabus": 7, "homework": 6, "polymer": 5, "bid": 4,
	}
	cluster, err := zerber.NewCluster(docFreqs, zerber.Options{N: 3, K: 2, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Membership: Dana is in both R&D and the course; the CEO only in
	// merger talks. Each index server checks membership independently.
	cluster.AddUser("dana", groupChemical)
	cluster.AddUser("dana", groupCourse)
	cluster.AddUser("raj", groupChemical)
	cluster.AddUser("ceo", groupMerger)
	cluster.AddUser("eve", groupCourse) // eve is ONLY in the course

	labSite, err := cluster.NewPeer("lab-server", 0)
	if err != nil {
		log.Fatal(err)
	}
	hqSite, err := cluster.NewPeer("hq-server", 0)
	if err != nil {
		log.Fatal(err)
	}

	dana := cluster.IssueToken("dana")
	ceo := cluster.IssueToken("ceo")
	eve := cluster.IssueToken("eve")

	// The lab indexes R&D and course material in one shuffled batch, so
	// even an adversary watching inserts cannot tell which elements
	// belong to which document (§5.4.1).
	batch := labSite.NewBatch()
	mustAdd(batch, peer.Document{ID: 10, Name: "trial-7.txt", Group: groupChemical,
		Content: "The polymer compound with the new catalyst doubled yield in the process trial."})
	mustAdd(batch, peer.Document{ID: 11, Name: "week3.md", Group: groupCourse,
		Content: "Course syllabus week three: homework on process safety review."})
	if err := batch.Flush(dana); err != nil {
		log.Fatal(err)
	}

	// HQ indexes the merger documents.
	if err := hqSite.IndexDocument(ceo, peer.Document{ID: 20, Name: "bid.eml", Group: groupMerger,
		Content: "The suitor raised the bid; valuation review is due before the merger draft."}); err != nil {
		log.Fatal(err)
	}

	searcher, err := cluster.Searcher()
	if err != nil {
		log.Fatal(err)
	}

	show := func(who string, tok zerber.Token, query []string) {
		results, err := searcher.Search(tok, query, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s query %-22v -> %d hit(s)", who, query, len(results))
		for _, r := range results {
			fmt.Printf("  [doc %d @ %s]", r.DocID, r.Peer)
		}
		fmt.Println()
	}

	fmt.Println("--- initial state ---")
	show("dana", dana, []string{"process"})   // sees lab doc AND course doc
	show("eve", eve, []string{"process"})     // sees only the course doc
	show("eve", eve, []string{"compound"})    // R&D term: nothing
	show("ceo", ceo, []string{"valuation"})   // merger doc
	show("dana", dana, []string{"valuation"}) // not a member: nothing

	// Document update: only the changed terms travel (§5.4.1 "performs
	// only the necessary updates").
	before := cluster.Servers()[0].StatsSnapshot()
	if err := labSite.UpdateDocument(dana, peer.Document{ID: 10, Name: "trial-7.txt", Group: groupChemical,
		Content: "The polymer compound with the improved catalyst doubled yield in the process trial."}); err != nil {
		log.Fatal(err)
	}
	after := cluster.Servers()[0].StatsSnapshot()
	fmt.Printf("\n--- update: 1 word changed -> %d inserts, %d deletes per server ---\n",
		after.Inserts-before.Inserts, after.Deletes-before.Deletes)
	show("dana", dana, []string{"improved"})

	// Project ends: the group dissolves member by member; content needs
	// no re-encryption because access control lives in the group table.
	fmt.Println("\n--- dana leaves R&D ---")
	cluster.RemoveUser("dana", groupChemical)
	show("dana", dana, []string{"compound"}) // gone
	show("dana", dana, []string{"syllabus"}) // course access intact

	// A new hire joins mid-project and immediately sees history.
	fmt.Println("\n--- newhire joins the merger group ---")
	cluster.AddUser("newhire", groupMerger)
	show("newh", cluster.IssueToken("newhire"), []string{"suitor"})
}

func mustAdd(b *peer.Batch, d peer.Document) {
	if err := b.Add(d); err != nil {
		log.Fatal(err)
	}
}
