package zerber_test

import (
	"fmt"
	"math"
	"testing"

	"zerber"
	"zerber/internal/confidential"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/shamir"
)

// These tests play the adversary of the threat model (§4, §7.1): Alice
// has taken over ONE index server and inspects everything stored there.

// buildAttackCluster indexes a small corpus with a known distribution and
// returns the cluster plus the corpus term probabilities.
func buildAttackCluster(t *testing.T) (*zerber.Cluster, *confidential.Distribution, map[string]int) {
	t.Helper()
	// A corpus whose document frequencies the adversary knows exactly
	// (her background knowledge B).
	dfs := map[string]int{}
	docs := []string{}
	common := []string{"report", "meeting", "budget", "status", "project", "team", "update", "plan"}
	for i := 0; i < 64; i++ {
		content := ""
		for j, term := range common {
			if i%(j+1) == 0 {
				content += term + " "
			}
		}
		if i == 13 {
			content += "hesselhofer" // the rare sensitive term
		}
		docs = append(docs, content)
	}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, term := range splitWords(d) {
			if !seen[term] {
				seen[term] = true
				dfs[term]++
			}
		}
	}
	c, err := zerber.NewCluster(dfs, zerber.Options{
		Heuristic: zerber.UDM, M: 3, Seed: 1, N: 3, K: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("owner", 1)
	tok := c.IssueToken("owner")
	p, err := c.NewPeer("site", 5)
	if err != nil {
		t.Fatal(err)
	}
	batch := p.NewBatch()
	for i, d := range docs {
		if err := batch.Add(peer.Document{ID: uint32(i + 1), Content: d, Group: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.Flush(tok); err != nil {
		t.Fatal(err)
	}
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		t.Fatal(err)
	}
	return c, dist, dfs
}

func splitWords(s string) []string {
	var out []string
	word := ""
	for _, r := range s {
		if r == ' ' {
			if word != "" {
				out = append(out, word)
				word = ""
			}
			continue
		}
		word += string(r)
	}
	if word != "" {
		out = append(out, word)
	}
	return out
}

func TestCompromisedServerSeesOnlyMergedLengths(t *testing.T) {
	c, _, dfs := buildAttackCluster(t)
	srv := c.Servers()[0] // Alice's box
	lengths := srv.ListLengths()

	// The adversary observes merged list lengths. Verify no individual
	// term's document frequency is observable: every merged list's
	// length is the SUM over its member terms, and with M=3 over 9 terms
	// every list has multiple members.
	table := c.Table()
	members := table.Members(keys(dfs))
	for lid, ms := range members {
		if len(ms) < 2 {
			t.Fatalf("list %d has a single member; pick M to force merging in this test", lid)
		}
		want := 0
		for _, term := range ms {
			want += dfs[term]
		}
		if lengths[merging.ListID(lid)] != want {
			t.Errorf("list %d length %d != sum of member DFs %d", lid, lengths[merging.ListID(lid)], want)
		}
	}
}

func TestSingleServerSharesLookRandom(t *testing.T) {
	// §5.1: one share reveals nothing. Statistical smoke test: the share
	// values stored on one server are spread over the field rather than
	// clustered near the (tiny) plaintext encodings.
	c, _, _ := buildAttackCluster(t)
	srv := c.Servers()[0]
	small, total := 0, 0
	for lid := range srv.ListLengths() {
		for _, sh := range srv.Store().List(lid) {
			total++
			if sh.Y.Uint64() < 1<<61/1024 {
				small++
			}
		}
	}
	if total == 0 {
		t.Fatal("no shares stored")
	}
	// Plaintext elements all encode below 2^60; uniform shares land in
	// the bottom 1/1024 of the field with probability ~0.1%.
	if frac := float64(small) / float64(total); frac > 0.05 {
		t.Errorf("%.2f%% of shares are suspiciously small; shares may leak plaintext", 100*frac)
	}
}

func TestKMinusOneServersCannotDecrypt(t *testing.T) {
	// Colluding adversaries with k-1 = 1 server cannot reconstruct: any
	// candidate secret is consistent with the observed share. We verify
	// by brute force on one element: reconstructing with a WRONG second
	// share produces a different (arbitrary) value, and nothing in the
	// single share distinguishes the true secret.
	c, _, _ := buildAttackCluster(t)
	srv := c.Servers()[0]
	var lid merging.ListID
	for l := range srv.ListLengths() {
		lid = l
		break
	}
	shares := srv.Store().List(lid)
	if len(shares) == 0 {
		t.Fatal("no shares")
	}
	observed := shares[0]
	x1 := srv.XCoord()

	// For any candidate secret s there exists a line through (0, s) and
	// (x1, y1); so P(secret | one share) = P(secret). Construct the
	// witness for several candidates and confirm consistency.
	for s := uint64(0); s < 100; s++ {
		candidate := field.New(s * 1234567)
		slope := field.Div(field.Sub(observed.Y, candidate), x1)
		poly := field.Poly{candidate, slope}
		if poly.Eval(x1) != observed.Y {
			t.Fatal("witness construction failed; single share would rule out candidates")
		}
	}
}

func TestEmpiricalAmplificationWithinR(t *testing.T) {
	// Definition 1 end-to-end: for every term, the adversary's posterior
	// P(element is for term t | merged list) = p_t / Σ_{u∈L} p_u must not
	// exceed RValue * p_t.
	c, dist, dfs := buildAttackCluster(t)
	table := c.Table()
	r := table.RValue()

	members := table.Members(keys(dfs))
	for _, ms := range members {
		var sum float64
		for _, term := range ms {
			sum += dist.P(term)
		}
		for _, term := range ms {
			posterior := dist.P(term) / sum
			bound := r * dist.P(term)
			if posterior > bound*(1+1e-9) {
				t.Errorf("term %q: posterior %v exceeds r*prior %v (r=%v)", term, posterior, bound, r)
			}
		}
	}
}

func TestProactiveRefreshNeutralizesOldShares(t *testing.T) {
	// §5.1: "if an adversary learns some of the shares, proactive sharing
	// ... those she already knows become useless". Full-system check on a
	// synthetic element.
	xs := []field.Element{1, 2, 3}
	secret := field.Element(424242)
	shares, err := shamir.Split(secret, 2, xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	stolen := shares[0] // adversary snapshot before refresh

	deltas, err := shamir.Refresh(2, xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := shamir.ApplyRefresh(shares, deltas)
	if err != nil {
		t.Fatal(err)
	}
	// Stolen share + one fresh share: wrong secret.
	got, err := shamir.Reconstruct([]shamir.Share{stolen, fresh[1]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got == secret {
		t.Fatal("stale+fresh shares reconstructed the secret")
	}
	// Two fresh shares: correct secret.
	got, err = shamir.Reconstruct([]shamir.Share{fresh[0], fresh[2]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatal("refresh corrupted the secret")
	}
}

func TestRareTermAbsentFromPublicStructures(t *testing.T) {
	// §6.4: with hash-based merging, inspecting the mapping table must
	// not reveal whether a rare term is indexed anywhere.
	dfs := map[string]int{}
	for i := 0; i < 200; i++ {
		dfs[fmt.Sprintf("common%03d", i)] = 100 - i/4
	}
	dfs["hesselhofer"] = 1
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := dist.P("common199") // everything at/below the tail is hashed
	tab, err := merging.Build(dist, merging.Options{
		Heuristic: merging.DFM, M: 16, R: 100, RareCutoff: cutoff,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Listed("hesselhofer") {
		t.Fatal("rare sensitive term appears in the public mapping table")
	}
	// Indexed and non-indexed rare terms are indistinguishable from the
	// table alone: both resolve through the same public hash.
	if tab.ListOf("hesselhofer") >= merging.ListID(tab.M()) ||
		tab.ListOf("neverindexedterm") >= merging.ListID(tab.M()) {
		t.Fatal("hash routing out of range")
	}
}

func TestAbsenceClaimsNotAmplified(t *testing.T) {
	// §5.2: the adversary's posterior for "t is NOT in d" never exceeds
	// the prior.
	_, dist, dfs := buildAttackCluster(t)
	terms := keys(dfs)
	var sum float64
	for _, term := range terms {
		sum += dist.P(term)
	}
	for _, term := range terms {
		ratio := confidential.AbsenceAmplification(dist.P(term), sum)
		if math.IsNaN(ratio) {
			continue
		}
		if ratio > 1+1e-12 {
			t.Errorf("absence claim for %q amplified by %v", term, ratio)
		}
	}
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
