package zerber_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"zerber"
	"zerber/internal/peer"
	"zerber/internal/sim"
)

// TestDifferentialAgainstPlainIndex is a randomized oracle test of the
// paper's §2 correctness bar: Zerber's answer set must be "identical to
// that of a trusted centralized ordinary inverted index that incorporates
// an access control list check". We generate random corpora, memberships
// and queries, maintain the reference system (sim.Oracle — the same
// plain index + ACL oracle the model checker uses), and compare result
// sets after every mutation. Trial counts follow the test tiers: 2 under
// -short, 5 by default, 20 under ZERBER_TEST_FULL=1 (make test-full).
func TestDifferentialAgainstPlainIndex(t *testing.T) {
	vocabulary := []string{
		"martha", "imclone", "layoff", "merger", "budget", "meeting",
		"status", "compound", "process", "suitor", "review", "draft",
	}
	users := []zerber.UserID{"u0", "u1", "u2"}
	numGroups := 3

	trials := tierCount(2, 5, 20)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))

		dfs := make(map[string]int)
		for i, term := range vocabulary {
			dfs[term] = len(vocabulary) - i
		}
		c, err := zerber.NewCluster(dfs, zerber.Options{
			Seed: int64(trial), M: 1 + trial%4,
			Heuristic: []zerber.Heuristic{zerber.DFM, zerber.BFM, zerber.UDM}[trial%3],
			R:         2,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Random memberships (every user in at least one group), mirrored
		// into the oracle.
		oracle := sim.NewOracle()
		for _, u := range users {
			joined := 0
			for g := 1; g <= numGroups; g++ {
				if rng.Intn(2) == 0 || joined == 0 && g == numGroups {
					c.AddUser(u, zerber.GroupID(g))
					oracle.AddUser(u, zerber.GroupID(g))
					joined++
				}
			}
		}
		owner := users[0]
		for g := 1; g <= numGroups; g++ {
			if !oracle.Member(owner, zerber.GroupID(g)) {
				c.AddUser(owner, zerber.GroupID(g))
				oracle.AddUser(owner, zerber.GroupID(g))
			}
		}
		ownerTok := c.IssueToken(owner)

		site, err := c.NewPeer(fmt.Sprintf("site%d", trial), int64(trial+1))
		if err != nil {
			t.Fatal(err)
		}
		searcher, err := c.Searcher()
		if err != nil {
			t.Fatal(err)
		}

		live := map[uint32]bool{}

		randDoc := func(id uint32) peer.Document {
			n := 2 + rng.Intn(6)
			content := ""
			for i := 0; i < n; i++ {
				content += vocabulary[rng.Intn(len(vocabulary))] + " "
			}
			return peer.Document{
				ID: id, Content: content, Group: zerber.GroupID(1 + rng.Intn(numGroups)),
			}
		}

		check := func(step string) {
			t.Helper()
			for _, u := range users {
				tok := c.IssueToken(u)
				qn := 1 + rng.Intn(3)
				query := make([]string, qn)
				for i := range query {
					query[i] = vocabulary[rng.Intn(len(vocabulary))]
				}
				got, _, err := searcher.SearchStats(tok, query, 1000)
				if err != nil {
					t.Fatalf("trial %d %s: search: %v", trial, step, err)
				}
				gotSet := map[uint32]bool{}
				for _, r := range got {
					gotSet[r.DocID] = true
				}
				wantSet := oracle.Expected(u, query)
				if len(gotSet) != len(wantSet) {
					t.Fatalf("trial %d %s: user %s query %v: zerber=%v oracle=%v",
						trial, step, u, query, keysOf(gotSet), keysOf(wantSet))
				}
				for d := range wantSet {
					if !gotSet[d] {
						t.Fatalf("trial %d %s: user %s query %v missing doc %d",
							trial, step, u, query, d)
					}
				}
			}
		}

		// Mutation script: inserts, updates, deletes interleaved with
		// consistency checks.
		nextID := uint32(1)
		for step := 0; step < 25; step++ {
			switch op := rng.Intn(4); {
			case op <= 1 || len(live) == 0: // insert
				doc := randDoc(nextID)
				nextID++
				if err := site.IndexDocument(ownerTok, doc); err != nil {
					t.Fatal(err)
				}
				oracle.Index(doc.ID, doc.Content, doc.Group)
				live[doc.ID] = true
			case op == 2: // update
				id := anyOf(rng, live)
				doc := randDoc(id)
				g, _ := oracle.GroupOf(id)
				doc.Group = g // group stays
				if err := site.UpdateDocument(ownerTok, doc); err != nil {
					t.Fatal(err)
				}
				oracle.Index(id, doc.Content, g)
			case op == 3: // delete
				id := anyOf(rng, live)
				if err := site.DeleteDocument(ownerTok, id); err != nil {
					t.Fatal(err)
				}
				oracle.Remove(id)
				delete(live, id)
			}
			if step%5 == 4 {
				check(fmt.Sprintf("step %d", step))
			}
		}
		check("final")
	}
}

func anyOf(rng *rand.Rand, set map[uint32]bool) uint32 {
	ids := make([]uint32, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))]
}

func keysOf(set map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
