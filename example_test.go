package zerber_test

import (
	"fmt"
	"log"

	"zerber"
	"zerber/internal/peer"
)

// ExampleCluster shows the complete Zerber lifecycle: build a cluster
// from corpus statistics, manage group membership, index documents, and
// run a ranked search with snippets.
func ExampleCluster() {
	docFreqs := map[string]int{
		"the": 50, "budget": 20, "meeting": 15, "martha": 8, "imclone": 4,
	}
	cluster, err := zerber.NewCluster(docFreqs, zerber.Options{N: 3, K: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cluster.AddUser("alice", 1)
	tok := cluster.IssueToken("alice")

	site, err := cluster.NewPeer("laptop", 7)
	if err != nil {
		log.Fatal(err)
	}
	err = site.IndexDocument(tok, peer.Document{
		ID: 1, Name: "memo.eml", Group: 1,
		Content: "Martha sold ImClone before the budget meeting.",
	})
	if err != nil {
		log.Fatal(err)
	}

	s, err := cluster.Searcher()
	if err != nil {
		log.Fatal(err)
	}
	results, err := s.Search(tok, []string{"imclone"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d result(s); doc %d hosted by %s\n", len(results), results[0].DocID, results[0].Peer)
	// Output: 1 result(s); doc 1 hosted by laptop
}

// ExampleCluster_revocation shows the no-key-management revocation
// story: removing a user from the group table is all it takes.
func ExampleCluster_revocation() {
	cluster, err := zerber.NewCluster(map[string]int{"merger": 3, "budget": 2}, zerber.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	cluster.AddUser("bob", 1)
	tok := cluster.IssueToken("bob")
	site, err := cluster.NewPeer("site", 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := site.IndexDocument(tok, peer.Document{ID: 1, Content: "merger budget", Group: 1}); err != nil {
		log.Fatal(err)
	}
	s, err := cluster.Searcher()
	if err != nil {
		log.Fatal(err)
	}

	before, _ := s.Search(tok, []string{"merger"}, 10)
	cluster.RemoveUser("bob", 1) // no re-encryption, no key rotation
	after, _ := s.Search(tok, []string{"merger"}, 10)
	fmt.Printf("before revocation: %d result(s); after: %d\n", len(before), len(after))
	// Output: before revocation: 1 result(s); after: 0
}
