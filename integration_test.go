package zerber_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"zerber/internal/auth"
	"zerber/internal/client"
	"zerber/internal/confidential"
	"zerber/internal/durable"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/server"
	"zerber/internal/transport"
	"zerber/internal/vocab"
)

// TestHTTPClusterEndToEnd exercises the full multi-process deployment
// shape over real HTTP: index servers behind transport.NewHTTPHandler,
// a peer and a client connected via transport.DialHTTP, shared auth key,
// group churn, update, and delete. The server count is tiered: 3 under
// -short, 5 by default, 9 in the nightly full tier — k stays 2, so the
// wider clusters exercise share fan-out and first-k retrieval at size.
func TestHTTPClusterEndToEnd(t *testing.T) {
	numServers := tierCount(3, 5, 9)
	svc, err := auth.NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	groups := auth.NewGroupTable()
	groups.Add("alice", 1)
	groups.Add("bob", 2)

	dfs := map[string]int{
		"martha": 9, "imclone": 7, "layoff": 5, "budget": 3, "merger": 1,
	}
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		t.Fatal(err)
	}
	table, err := merging.Build(dist, merging.Options{Heuristic: merging.DFM, M: 2, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	voc := vocab.NewFromTerms(table.ListedTerms())

	// Real HTTP servers (sharing the verification key, each with its
	// own x-coordinate), as in the cmd/zerber-server deployment.
	var apis []transport.API
	for i := 0; i < numServers; i++ {
		srv := server.New(server.Config{
			Name: fmt.Sprintf("http-ix%d", i), X: field.Element(i + 1),
			Auth: auth.NewServiceWithKey(svc.Key(), time.Minute), Groups: groups,
		})
		ts := httptest.NewServer(transport.NewHTTPHandler(srv))
		defer ts.Close()
		c, err := transport.DialHTTP(ts.URL, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		apis = append(apis, c)
	}

	p, err := peer.New(peer.Config{
		Name: "http-site", Servers: apis, K: 2, Table: table, Vocab: voc,
		Rand: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	alice := svc.Issue("alice")
	bob := svc.Issue("bob")

	// Index for two different groups over the wire.
	if err := p.IndexDocument(alice, peer.Document{ID: 1, Content: "martha imclone layoff", Group: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.IndexDocument(bob, peer.Document{ID: 2, Content: "martha merger budget", Group: 2}); err != nil {
		t.Fatal(err)
	}

	cl, err := client.New(apis, 2, table, voc)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := cl.Search(alice, []string{"martha"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DocID != 1 {
		t.Fatalf("alice over HTTP sees %v", res)
	}
	if stats.ServersQueried != 2 {
		t.Errorf("ServersQueried = %d", stats.ServersQueried)
	}

	// Update over HTTP: change one term.
	if err := p.UpdateDocument(alice, peer.Document{ID: 1, Content: "martha imclone budget", Group: 1}); err != nil {
		t.Fatal(err)
	}
	res, _, err = cl.Search(alice, []string{"layoff"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Error("stale term visible after HTTP update")
	}
	res, _, err = cl.Search(alice, []string{"budget"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Error("new term missing after HTTP update")
	}

	// Delete over HTTP.
	if err := p.DeleteDocument(bob, 2); err != nil {
		t.Fatal(err)
	}
	res, _, err = cl.Search(bob, []string{"merger"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Error("deleted document visible over HTTP")
	}
}

// TestHTTPDurableCluster runs the HTTP handler over crash-recoverable
// servers and restarts them mid-test — the complete production shape:
// HTTP transport + WAL durability + Shamir sharing + merging + ACLs.
// Server count tiered like TestHTTPClusterEndToEnd.
func TestHTTPDurableCluster(t *testing.T) {
	numServers := tierCount(3, 3, 7)
	svc, err := auth.NewService(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	groups := auth.NewGroupTable()
	groups.Add("alice", 1)
	dfs := map[string]int{"martha": 3, "imclone": 2, "layoff": 1}
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		t.Fatal(err)
	}
	table, err := merging.Build(dist, merging.Options{Heuristic: merging.UDM, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	voc := vocab.NewFromTerms(table.ListedTerms())
	dir := t.TempDir()

	open := func(i int) (*durable.Server, *httptest.Server) {
		ds, err := durable.Open(server.Config{
			Name: fmt.Sprintf("dur-ix%d", i), X: field.Element(i + 1),
			Auth: auth.NewServiceWithKey(svc.Key(), time.Minute), Groups: groups,
		}, fmt.Sprintf("%s/ix%d.wal", dir, i))
		if err != nil {
			t.Fatal(err)
		}
		return ds, httptest.NewServer(transport.NewHTTPHandler(ds))
	}

	var apis []transport.API
	var handles []*durable.Server
	var servers []*httptest.Server
	for i := 0; i < numServers; i++ {
		ds, ts := open(i)
		handles = append(handles, ds)
		servers = append(servers, ts)
		c, err := transport.DialHTTP(ts.URL, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		apis = append(apis, c)
	}

	alice := svc.Issue("alice")
	p, err := peer.New(peer.Config{
		Name: "site", Servers: apis, K: 2, Table: table, Vocab: voc,
		Rand: rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IndexDocument(alice, peer.Document{ID: 1, Content: "martha imclone", Group: 1}); err != nil {
		t.Fatal(err)
	}

	// Crash all three servers and restart from their logs.
	for i := range servers {
		servers[i].Close()
		if err := handles[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
	apis = apis[:0]
	for i := 0; i < numServers; i++ {
		ds, ts := open(i)
		defer ts.Close()
		defer ds.Close()
		if ds.Recovered == 0 {
			t.Fatalf("server %d recovered nothing", i)
		}
		c, err := transport.DialHTTP(ts.URL, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		apis = append(apis, c)
	}
	cl, err := client.New(apis, 2, table, voc)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := cl.Search(alice, []string{"imclone"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DocID != 1 {
		t.Fatalf("post-crash HTTP search = %v", res)
	}
}
