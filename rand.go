package zerber

import (
	"encoding/binary"
	"math/rand"
)

// seededReader adapts a deterministic math/rand source to io.Reader for
// reproducible simulations. Production peers use crypto/rand (the default
// when Cluster.NewPeer is called with seed 0).
type seededReader struct{ rng *rand.Rand }

func newSeededReader(seed int64) *seededReader {
	return &seededReader{rng: rand.New(rand.NewSource(seed))}
}

func (r *seededReader) Read(p []byte) (int, error) {
	var buf [8]byte
	n := 0
	for n < len(p) {
		binary.LittleEndian.PutUint64(buf[:], r.rng.Uint64())
		n += copy(p[n:], buf[:])
	}
	return len(p), nil
}
