module zerber

go 1.24
