package zerber_test

import (
	"fmt"
	"strings"
	"testing"

	"zerber"
	"zerber/internal/peer"
)

// demoDocFreqs is a small corpus-statistics table for cluster setup.
func demoDocFreqs() map[string]int {
	return map[string]int{
		"the": 100, "project": 60, "budget": 40, "meeting": 30,
		"martha": 20, "imclone": 10, "layoff": 8, "merger": 6,
		"chemical": 4, "process": 4, "compound": 2, "hesselhofer": 1,
	}
}

func newDemoCluster(t *testing.T, opts zerber.Options) *zerber.Cluster {
	t.Helper()
	c, err := zerber.NewCluster(demoDocFreqs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterDefaults(t *testing.T) {
	c := newDemoCluster(t, zerber.Options{})
	if c.N() != 3 || c.K() != 2 {
		t.Errorf("defaults N=%d K=%d, want 3/2", c.N(), c.K())
	}
	if c.RValue() <= 0 {
		t.Errorf("RValue = %v", c.RValue())
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := zerber.NewCluster(demoDocFreqs(), zerber.Options{N: 2, K: 3}); err == nil {
		t.Error("K > N must be rejected")
	}
	if _, err := zerber.NewCluster(nil, zerber.Options{}); err == nil {
		t.Error("empty corpus statistics must be rejected")
	}
}

func TestEndToEndSearchWithSnippets(t *testing.T) {
	c := newDemoCluster(t, zerber.Options{Seed: 1})
	c.AddUser("alice", 1)
	tok := c.IssueToken("alice")

	p, err := c.NewPeer("site1", 7)
	if err != nil {
		t.Fatal(err)
	}
	docs := []peer.Document{
		{ID: 1, Name: "memo.eml", Content: "Martha sold ImClone before the layoff announcement.", Group: 1},
		{ID: 2, Name: "budget.doc", Content: "The project budget meeting covered the merger.", Group: 1},
		{ID: 3, Name: "lab.pdf", Content: "The chemical process uses a new compound.", Group: 1},
	}
	for _, d := range docs {
		if err := p.IndexDocument(tok, d); err != nil {
			t.Fatal(err)
		}
	}

	s, err := c.Searcher()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(tok, []string{"imclone"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DocID != 1 {
		t.Fatalf("Search(imclone) = %+v", res)
	}
	if !strings.Contains(strings.ToLower(res[0].Snippet), "imclone") {
		t.Errorf("snippet %q lacks the query term", res[0].Snippet)
	}
	if res[0].Peer != "site1" {
		t.Errorf("peer = %q", res[0].Peer)
	}
}

func TestMultiGroupIsolation(t *testing.T) {
	c := newDemoCluster(t, zerber.Options{Seed: 2})
	c.AddUser("alice", 1)
	c.AddUser("bob", 2)
	aliceTok := c.IssueToken("alice")
	bobTok := c.IssueToken("bob")

	p, err := c.NewPeer("site1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IndexDocument(aliceTok, peer.Document{ID: 1, Content: "martha imclone", Group: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.IndexDocument(bobTok, peer.Document{ID: 2, Content: "martha merger", Group: 2}); err != nil {
		t.Fatal(err)
	}

	s, err := c.Searcher()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(aliceTok, []string{"martha"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DocID != 1 {
		t.Fatalf("alice results = %+v", res)
	}
	res, err = s.Search(bobTok, []string{"martha"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DocID != 2 {
		t.Fatalf("bob results = %+v", res)
	}
}

func TestMembershipChurn(t *testing.T) {
	// §2: "Changes in group membership will be immediately reflected in
	// the query answers."
	c := newDemoCluster(t, zerber.Options{Seed: 3})
	c.AddUser("alice", 1)
	c.AddUser("carol", 1)
	aliceTok := c.IssueToken("alice")
	carolTok := c.IssueToken("carol")

	p, err := c.NewPeer("site1", 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IndexDocument(aliceTok, peer.Document{ID: 1, Content: "merger budget", Group: 1}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Searcher()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(carolTok, []string{"merger"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("carol (member) sees %d results", len(res))
	}
	// Revoke carol: she immediately loses access — no re-encryption, no
	// key revocation, exactly the management story of §5.
	c.RemoveUser("carol", 1)
	res, err = s.Search(carolTok, []string{"merger"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("revoked carol still sees %d results", len(res))
	}
}

func TestDocumentLifecycle(t *testing.T) {
	c := newDemoCluster(t, zerber.Options{Seed: 4})
	c.AddUser("alice", 1)
	tok := c.IssueToken("alice")
	p, err := c.NewPeer("site1", 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Searcher()
	if err != nil {
		t.Fatal(err)
	}

	if err := p.IndexDocument(tok, peer.Document{ID: 1, Content: "budget meeting", Group: 1}); err != nil {
		t.Fatal(err)
	}
	// Update: replace "budget" with "merger".
	if err := p.UpdateDocument(tok, peer.Document{ID: 1, Content: "merger meeting", Group: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(tok, []string{"budget"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Error("stale term still findable after update")
	}
	res, err = s.Search(tok, []string{"merger"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Error("new term not findable after update")
	}
	// Delete.
	if err := p.DeleteDocument(tok, 1); err != nil {
		t.Fatal(err)
	}
	res, err = s.Search(tok, []string{"merger"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Error("deleted document still findable")
	}
	for _, srv := range c.Servers() {
		if srv.TotalElements() != 0 {
			t.Error("servers retain elements after document deletion")
		}
	}
}

func TestProactiveReshareViaCluster(t *testing.T) {
	c := newDemoCluster(t, zerber.Options{Seed: 8})
	c.AddUser("alice", 1)
	tok := c.IssueToken("alice")
	p, err := c.NewPeer("site1", 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IndexDocument(tok, peer.Document{ID: 1, Content: "martha imclone budget", Group: 1}); err != nil {
		t.Fatal(err)
	}
	n, err := c.ProactiveReshare()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("refreshed %d elements, want 3", n)
	}
	s, err := c.Searcher()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(tok, []string{"imclone"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("post-reshare search broken: %v", res)
	}
}

func TestDuplicatePeerName(t *testing.T) {
	c := newDemoCluster(t, zerber.Options{})
	if _, err := c.NewPeer("dup", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewPeer("dup", 2); err == nil {
		t.Error("duplicate peer name accepted")
	}
}

func TestSearchStatsExposed(t *testing.T) {
	c := newDemoCluster(t, zerber.Options{Seed: 5, M: 2, Heuristic: zerber.UDM})
	c.AddUser("alice", 1)
	tok := c.IssueToken("alice")
	p, err := c.NewPeer("site1", 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IndexDocument(tok, peer.Document{ID: 1, Content: "martha imclone budget merger", Group: 1}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Searcher()
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.SearchStats(tok, []string{"martha"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ElementsFetched == 0 || stats.ServersQueried != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSuggestOptions(t *testing.T) {
	// Build a Zipfian corpus statistic large enough for a real sweep.
	dfs := make(map[string]int)
	for i := 0; i < 3000; i++ {
		dfs[fmt.Sprintf("t%04d", i)] = 1 + 30000/(i+1)
	}
	opts, err := zerber.SuggestOptions(dfs, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opts.M < 2 || opts.R <= 0 || opts.RareCutoff <= 0 {
		t.Fatalf("suggested options look wrong: %+v", opts)
	}
	// The suggested options must build a working cluster.
	c, err := zerber.NewCluster(dfs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.RValue() <= 0 {
		t.Errorf("RValue = %v", c.RValue())
	}
	// Constrained variant: r capped hard means fewer lists (more merging).
	tight, err := zerber.SuggestOptions(dfs, nil, c.RValue()/2, 0)
	if err == nil && tight.M > opts.M {
		t.Errorf("tighter r cap chose more lists (%d > %d)", tight.M, opts.M)
	}
	// Infeasible constraints must error.
	if _, err := zerber.SuggestOptions(dfs, nil, 1e-12, 0); err == nil {
		t.Error("impossible constraint accepted")
	}
}

func TestOpaqueUserIDs(t *testing.T) {
	// §7.1 extension: index servers must never see real identities.
	c, err := zerber.NewCluster(demoDocFreqs(), zerber.Options{Seed: 9, OpaqueUserIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	c.AddUser("alice", 1)
	tok := c.IssueToken("alice")
	p, err := c.NewPeer("site1", 14)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IndexDocument(tok, peer.Document{ID: 1, Content: "martha imclone", Group: 1}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Searcher()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(tok, []string{"martha"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("search under pseudonyms = %v", res)
	}
	// The server-side group table holds only pseudonyms.
	for _, srv := range c.Servers() {
		for _, member := range srv.Groups().MembersOf(1) {
			if strings.Contains(string(member), "alice") {
				t.Fatal("real identity visible on an index server")
			}
		}
	}
	// Revocation still works through the pseudonym mapping.
	c.RemoveUser("alice", 1)
	res, err = s.Search(tok, []string{"martha"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Error("revocation broken under opaque IDs")
	}
}

func TestAllMergingHeuristicsWork(t *testing.T) {
	for _, h := range []zerber.Heuristic{zerber.DFM, zerber.BFM, zerber.UDM} {
		c, err := zerber.NewCluster(demoDocFreqs(), zerber.Options{Heuristic: h, M: 3, R: 3, Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		c.AddUser("alice", 1)
		tok := c.IssueToken("alice")
		p, err := c.NewPeer("site1", 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.IndexDocument(tok, peer.Document{ID: 1, Content: "martha imclone", Group: 1}); err != nil {
			t.Fatal(err)
		}
		s, err := c.Searcher()
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Search(tok, []string{"imclone"}, 5)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if len(res) != 1 {
			t.Errorf("%s: %d results", h, len(res))
		}
	}
}
