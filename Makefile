# Zerber build targets. CI (.github/workflows/ci.yml) runs exactly these,
# so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench benchstore lint fmt ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order to surface
# hidden order dependencies; the seed is printed on failure for replay.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# One iteration per benchmark: a smoke run proving the benchmarks still
# compile and execute, not a measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Storage-engine comparison: BenchmarkServerMixed runs the same parallel
# mixed insert/lookup/delete workload against the single-lock baseline
# (StoreShards=1) and the sharded default, so the sharding speedup is
# reproducible from one command. Needs >1 CPU to show parallel gain.
benchstore:
	$(GO) test -run='^$$' -bench='^BenchmarkServerMixed$$' -benchtime=0.5s -count=1 ./internal/server/

lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: build lint test race bench
