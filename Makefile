# Zerber build targets. CI (.github/workflows/ci.yml) runs exactly these,
# so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench lint fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke run proving the benchmarks still
# compile and execute, not a measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: build lint test race bench
