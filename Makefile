# Zerber build targets. CI (.github/workflows/ci.yml) runs exactly these,
# so a green `make ci` locally means a green pipeline.

GO ?= go
BENCHTIME ?= 0.5s
FUZZTIME ?= 10s
COMMIT ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

.PHONY: build test test-full race fuzz cover bench benchstore benchjson \
	loadsmoke loadfull loadbaseline loadbaseline-binary loadbaseline-disk \
	loadbaseline-full lint fmt ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order to surface
# hidden order dependencies; the seed is printed on failure for replay.
# This is tier 1: unit + oracle tests plus the short simulation tier
# (see TESTING.md for the tier map).
test:
	$(GO) test -shuffle=on ./...

# The deep tier, run by the nightly workflow: thousands of randomized
# simulation programs, 20 oracle trials, and the long equivalence
# sweeps. ZERBER_TEST_FULL=1 is what the tiered tests key on.
test-full:
	ZERBER_TEST_FULL=1 $(GO) test -count=1 -timeout=30m -shuffle=on ./...

# The race tier runs -short so the detector's ~10-20x slowdown stays off
# the critical path; the full-size suite runs race-free in `test` and at
# full depth in the nightly `test-full`.
race:
	$(GO) test -race -short -shuffle=on ./...

# Fuzz smoke: every fuzz target for FUZZTIME (default 10s) each. Go
# allows one -fuzz pattern per package invocation, hence one line per
# target. CI runs this with a shorter budget; use `make fuzz
# FUZZTIME=5m` for a real session.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -run='^$$' -fuzz='^FuzzJournalDecode$$' -fuzztime=$(FUZZTIME) ./internal/journal
	$(GO) test -run='^$$' -fuzz='^FuzzSegmentDecode$$' -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run='^$$' -fuzz='^FuzzApplyRequest$$' -fuzztime=$(FUZZTIME) ./internal/transport
	$(GO) test -run='^$$' -fuzz='^FuzzBinaryFrameDecode$$' -fuzztime=$(FUZZTIME) ./internal/transport
	$(GO) test -run='^$$' -fuzz='^FuzzTokenize$$' -fuzztime=$(FUZZTIME) ./internal/textproc
	$(GO) test -run='^$$' -fuzz='^FuzzSnippet$$' -fuzztime=$(FUZZTIME) ./internal/textproc

# Coverage: per-package summary plus a ratcheting floor. CI fails if
# total statement coverage drops below the number committed in
# COVERAGE.txt; raising code coverage lets the floor be raised in the
# same change. This runs the full tier-1 suite (with -shuffle, like
# `test`), so CI uses it AS the test step rather than paying for the
# suite twice.
cover:
	$(GO) test -count=1 -shuffle=on -coverprofile=cover.out ./...
	$(GO) run ./cmd/zerber-cover -profile cover.out -baseline COVERAGE.txt

# One iteration per benchmark: a smoke run proving the benchmarks still
# compile and execute, not a measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Storage-engine comparison: BenchmarkServerMixed runs the same parallel
# mixed insert/lookup/delete workload against the single-lock baseline
# (StoreShards=1), the sharded default, and the log-structured disk
# engine under a cache budget well below the dataset, so the sharding
# speedup and the disk residency cost are reproducible from one
# command. Needs >1 CPU to show parallel gain.
benchstore:
	$(GO) test -run='^$$' -bench='^BenchmarkServerMixed$$' -benchtime=0.5s -count=1 ./internal/server/

# Indexing-pipeline benchmarks, recorded as a committed JSON artifact so
# the write-path performance trajectory is tracked alongside the code:
# batched split/encrypt vs the per-element baselines, plus the
# end-to-end 5,000-term document index (paper §5.1).
# Both steps write to temp files (gitignored) so a benchmark failure or
# parser failure aborts the recipe without touching the committed
# BENCH_index.json: a pipe would take only the last command's exit
# status, and redirecting the parser straight into BENCH_index.json
# would truncate it before the parser even runs.
benchjson:
	$(GO) test -run='^$$' \
		-bench='^(BenchmarkSplitBatch|BenchmarkSplitSequential|BenchmarkEncryptBatch|BenchmarkEncryptSequential|BenchmarkIndexDocument5k|BenchmarkIndexDocument5kSerial|BenchmarkUpdateDocument|BenchmarkJournaledFlush|BenchmarkUnjournaledFlush|BenchmarkFillRandDRBG|BenchmarkFillRandCryptoDirect|BenchmarkInvChain|BenchmarkInvGenericPow|BenchmarkEncodeGetPostingLists|BenchmarkBinaryVsJSONRoundTrip|BenchmarkMigrationThroughput|BenchmarkSearchTopK|BenchmarkServerMixed)$$' \
		-benchmem -benchtime=$(BENCHTIME) -count=1 \
		./internal/field/ ./internal/shamir/ ./internal/posting/ ./internal/peer/ \
		./internal/transport/ ./internal/dht/ ./internal/server/ . \
		> bench_index.out.tmp
	$(GO) run ./cmd/zerber-benchjson -commit $(COMMIT) -scale benchtime-$(BENCHTIME) \
		< bench_index.out.tmp > bench_index.json.tmp
	mv bench_index.json.tmp BENCH_index.json
	@rm -f bench_index.out.tmp
	@cat BENCH_index.json

# Closed-loop load harness (cmd/zerber-loadgen): a real multi-server
# cluster served over the HTTP transport, with concurrent searchers
# replaying the Zipfian query model while peers index/update/delete and
# group churn + proactive resharing run in the background. Artifacts are
# written through temp files for the same no-truncation reason as
# benchjson. `compare` exits nonzero on a REGRESS verdict, failing the
# job; LOAD_baseline.json is the committed reference (see TESTING.md for
# when and how to re-record it).
loadsmoke:
	$(GO) run ./cmd/zerber-loadgen run -scale smoke -commit $(COMMIT) \
		-out load_smoke.json.tmp
	mv load_smoke.json.tmp LOAD_smoke.json
	$(GO) run ./cmd/zerber-loadgen compare -out LOAD_verdict.json \
		LOAD_baseline.json LOAD_smoke.json
	$(GO) run ./cmd/zerber-loadgen run -scale smoke -transport binary \
		-commit $(COMMIT) -out load_smoke_binary.json.tmp
	mv load_smoke_binary.json.tmp LOAD_smoke_binary.json
	$(GO) run ./cmd/zerber-loadgen compare -out LOAD_verdict_binary.json \
		LOAD_baseline_binary.json LOAD_smoke_binary.json
	$(GO) run ./cmd/zerber-loadgen run -scale smoke -store-engine disk \
		-commit $(COMMIT) -out load_smoke_disk.json.tmp
	mv load_smoke_disk.json.tmp LOAD_smoke_disk.json
	$(GO) run ./cmd/zerber-loadgen compare -out LOAD_verdict_disk.json \
		LOAD_baseline_disk.json LOAD_smoke_disk.json

loadfull:
	$(GO) run ./cmd/zerber-loadgen run -scale full -commit $(COMMIT) \
		-out load_full.json.tmp
	mv load_full.json.tmp LOAD_full.json
	$(GO) run ./cmd/zerber-loadgen compare -out LOAD_verdict.json \
		LOAD_baseline_full.json LOAD_full.json

# Baseline refresh: re-record the committed reference artifacts after an
# intentional performance change (then commit the updated files).
loadbaseline:
	$(GO) run ./cmd/zerber-loadgen run -scale smoke -commit $(COMMIT) \
		-out load_baseline.json.tmp
	mv load_baseline.json.tmp LOAD_baseline.json

loadbaseline-binary:
	$(GO) run ./cmd/zerber-loadgen run -scale smoke -transport binary \
		-commit $(COMMIT) -out load_baseline.json.tmp
	mv load_baseline.json.tmp LOAD_baseline_binary.json

loadbaseline-disk:
	$(GO) run ./cmd/zerber-loadgen run -scale smoke -store-engine disk \
		-commit $(COMMIT) -out load_baseline.json.tmp
	mv load_baseline.json.tmp LOAD_baseline_disk.json

loadbaseline-full:
	$(GO) run ./cmd/zerber-loadgen run -scale full -commit $(COMMIT) \
		-out load_baseline.json.tmp
	mv load_baseline.json.tmp LOAD_baseline_full.json

lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI installs and runs it)"; \
	fi

fmt:
	gofmt -w .

ci: build lint cover race bench
