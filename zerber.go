// Package zerber is an implementation of Zerber, the r-confidential
// inverted index for distributed sensitive documents of Zerr et al.
// (EDBT 2008).
//
// Zerber lets collaboration groups inside a large enterprise share a
// fast, centralized full-text index without trusting the index servers
// with document contents:
//
//   - every posting element [document_ID, term_ID, tf] is split with
//     Shamir k-out-of-n secret sharing across n index servers, so up to
//     k-1 compromised servers reveal nothing about pre-existing elements
//     and no keys ever need to be distributed or revoked;
//   - posting lists of several terms are merged so a compromised server
//     cannot learn per-term document frequencies; the leak is bounded by
//     the tunable r-confidentiality parameter;
//   - every index server enforces per-group access control on lookups,
//     and group membership changes take effect immediately.
//
// The entry point is Cluster, which wires the n index servers, the
// public mapping table, and the authentication service. Peers (document
// owners) index and update documents; Searchers run ranked keyword
// queries.
//
//	cluster, _ := zerber.NewCluster(docFreqs, zerber.Options{N: 3, K: 2})
//	cluster.AddUser("alice", 1)
//	p, _ := cluster.NewPeer("site1", 0)
//	tok := cluster.IssueToken("alice")
//	p.IndexDocument(tok, peer.Document{ID: 1, Content: "...", Group: 1})
//	s, _ := cluster.Searcher()
//	results, _ := s.Search(tok, []string{"imclone"}, 10)
//
// # Query concurrency
//
// The query hot path is concurrent end-to-end. A search fans its
// posting-list request out to the index servers in parallel and
// completes as soon as the first k respond (Algorithm 2 needs any k of
// the n shares); stragglers are cancelled through context.Context, which
// the transport layer threads down to every server call. Three Options
// knobs tune the engine:
//
//   - FanoutWidth caps the number of concurrently in-flight server
//     requests (0 = all n at once; 1 = the sequential baseline);
//
//   - HedgeDelay, with a narrow fan-out, launches one extra server each
//     time the delay elapses without k responses, hedging tail latency;
//
//   - DecryptWorkers sets how many goroutines reconstruct the returned
//     Shamir shares (0 = one per CPU). Joined elements are processed in
//     a deterministic order, so results and Stats are reproducible.
//
// # Top-k retrieval
//
// By default a search fetches the full posting list of every query term
// — exact retrieval, whose cost grows linearly with list length. The
// TopKMode option switches searches to the early-terminating block
// protocol of Zerber+R (§6): each peer tags every posting element, at
// encryption time, with a coarse impact bucket (the rounded log2 of its
// term frequency) carried in the top bits of the element's public
// global ID, and every index server keeps each merged list ordered by
// descending bucket. A top-k query then streams score-ordered blocks —
// GetPostingBlocks(list, from, n) — from k servers round by round,
// decrypts incrementally on the worker pool, and stops as soon as a
// no-random-access threshold argument (ranking.Stream) proves that no
// unfetched element can alter the top k: the bucket of the first
// unfetched position bounds everything behind it. Latency then scales
// with the depth of the k-th result, not with the list length, which is
// what makes hot Zipfian terms affordable; BlockSize tunes the
// per-round window (doubling each round), trading round trips against
// over-fetch.
//
// Ranking under TopKMode is by summed term frequency with ties broken
// by ascending document ID — a collection-independent order that the
// bucket layout sorts servers by and that exhaustive retrieval
// reproduces exactly, so early termination is a pure optimization:
// results are bit-identical to scanning everything. (Exact mode keeps
// TF-IDF ranking, which needs the full lists for personalized
// collection statistics.)
//
// The bucket is a deliberate, bounded widening of the leak budget: a
// compromised server already sees list lengths and access patterns;
// under TopKMode it additionally sees each element's ~log2(tf) — 16
// quantized levels, not the tf itself — which is exactly the §6 trade
// the paper makes for sub-linear retrieval. Per-term document
// frequencies stay hidden by list merging as before.
//
// # Storage engine
//
// Server-side concurrency is governed by the storage engine behind each
// index server. Every server is a thin policy layer (authentication,
// group checks, stats) over the store.Store interface, which captures
// the keyed share operations of the paper's recovery design (§5.4.1):
// batch append/replace, swap-delete by (list, global ID), authorized
// scan, full-list ingest/drop for DHT migration, delta application for
// proactive resharing, and keyed iteration for WAL compaction.
//
// The StoreShards option selects the engine. StoreShards=1 is the
// single-lock legacy baseline: one RWMutex over flat maps, so every
// insert, delete, and lookup on a server serializes. Any other value
// stripes the merged posting lists over independently locked shards
// keyed by hash(ListID) (0 picks a GOMAXPROCS-scaled power of two), so
// mixed traffic on different lists proceeds in parallel. A merged list
// lives entirely in one shard, so within-list share ordering — and
// therefore retrieval output and Stats — is identical under every
// setting; only throughput changes. Sharding is invisible to the
// confidentiality analysis: shares stay encrypted inside the engine and
// access control stays at the server boundary (see the contract in
// internal/store).
//
// # Disk engine
//
// The StoreEngine option selects an engine by name instead; "disk"
// swaps every server's store for the log-structured on-disk engine
// (store.Disk), whose resident memory is O(index) rather than O(data):
// share payloads live in CRC-framed append-only segment files under
// StoreDir and only a compact per-list index — plus a bounded LRU cache
// of hot lists — stays in memory. Its durability contract mirrors the
// peer journal's: every mutation batch is one framed record group, so a
// crash either persists a whole Upsert/ApplyDeltas batch or none of it;
// a torn tail from a kill mid-append is detected by CRC and truncated
// at the next open; and background compaction rewrites live data to a
// fresh segment with a temp-file-plus-rename commit, so a crash at any
// point inside compaction recovers to exactly the pre- or
// post-compaction state, never a mix. The engine passes the same
// randomized cross-engine equivalence and simulation tiers as the
// in-memory stores — retrieval output and Stats are bit-identical;
// only residency and latency change.
//
// # Indexing pipeline
//
// The write side mirrors the query side's batched design. Indexing a
// document (Algorithm 1a; §5.1 reports splitting a 5,000-term document
// in the low-millisecond range) runs as a two-stage pipeline inside the
// peer. The staging stage is cleartext bookkeeping: term counting,
// vocabulary lookups, and one random global ID per element. The
// splitting stage then shares every staged element in bulk through a
// shamir.Splitter — the write-side twin of the cached Lagrange
// Reconstructor — which validates the servers' x-coordinates once,
// precomputes the Vandermonde power table, and writes all shares into
// per-server contiguous buffers with a constant number of allocations
// per batch instead of several per element. Random polynomial
// coefficients come from field.ShareSource, a ChaCha8 generator keyed
// (and periodically re-keyed) from crypto/rand, so entropy syscalls are
// amortized across a whole document rather than paid per coefficient.
//
// Batch flushes defer splitting entirely to Flush, so one batched pass
// covers every queued document before the correlation-hiding shuffle
// (§5.4.1). The EncryptWorkers option fans that pass out across
// same-group windows of staged elements, each worker drawing from its
// own DRBG; peers with a deterministic seed always encrypt serially so
// their share streams stay reproducible. Proactive resharing rides the
// same pipeline: a refresh delta is a Shamir share of zero, so delta
// generation is a SplitBatch over a zero-secret vector.
//
// # Mutation pipeline & recovery
//
// Every peer mutation — IndexDocument, UpdateDocument, DeleteDocument,
// Batch.Flush — runs as one journaled operation with a unique ID and a
// two-stage protocol: the fresh elements are inserted on every server
// first, and only then are the superseded elements deleted, so an
// interruption at any point leaves the old postings intact (at worst
// both generations exist transiently). The complete encrypted payload
// is built before the first byte is sent; a payload-construction
// failure leaves the index untouched.
//
// With the JournalDir option set, each peer persists its operations to
// a journal (fsynced before the first send) along with one record per
// per-server acknowledgement. After a crash, reopening the peer on the
// same journal restores its document state from the completed
// operations, and peer.Recover resumes the in-flight ones: servers that
// acknowledged before the crash are skipped, the rest receive the
// journaled payload byte-identically. Every send carries the operation
// ID and stage; index servers keep a bounded per-caller window of
// applied operations and acknowledge redeliveries without re-applying
// or re-counting stats. Inserts upsert by (list, global ID) and the
// mutation path's deletes treat absence as success, so even an
// operation evicted from a server's window re-applies convergently:
// retries and replays are exactly-once in effect, with no coordination
// beyond the operation ID. peer.CompactJournal bounds journal growth by
// rewriting it to one snapshot per live document, like the durable
// server's WAL compaction.
//
// Guarantees, precisely: a mutation whose call returned nil is applied
// on every server exactly once; a mutation that failed or was
// interrupted is either absent everywhere or completes exactly once
// after Recover (or any later mutation, which drains pending
// operations first); no interleaving of crashes, retries, and
// redeliveries orphans an element, because nothing is deleted before
// the replacement is acknowledged everywhere and every delete is
// journaled before it is issued.
//
// # Membership & rebalancing
//
// With the DHTNodes option above 1, each of the n share slots is served
// not by one index server but by a set of physical nodes behind a
// dht.Slot: merged posting lists are partitioned over the nodes by a
// consistent-hashing ring, and the slot — which implements the same
// transport API as a monolithic server — routes every operation to the
// node authoritative for its lists. Shares stay bound to the slot's
// public x-coordinate, so the confidentiality analysis is unchanged:
// the ring only decides which box inside a slot stores a list.
//
// Membership is an online operation: JoinNode and LeaveNode add or
// drain a named node across every slot while the cluster keeps
// serving. The guarantees, precisely:
//
//   - Authoritative until cutover: each list migrates through a
//     two-phase handoff — a copy phase during which the source node
//     keeps serving reads and writes (mutations landing mid-copy are
//     recorded in a dirty set and reconciled before the switch), then
//     a per-list atomic cutover that flips routing to the target.
//     Reads never see a half-ingested copy.
//   - Retry safety: every transfer delivery carries the ring epoch and
//     a per-list sequence number; targets apply deliveries in order,
//     acknowledge replays idempotently, and reject gaps and stale
//     epochs, so per-transfer timeouts, bounded-backoff retries, and
//     duplicated or reordered migration traffic cannot corrupt a list.
//   - Graceful degradation: a dead or failing migration target aborts
//     only that list's move — the source retains authority, the slot
//     keeps serving with Pending > 0 rather than wedging, and
//     Rebalance retries the remaining work (a node that cannot finish
//     draining stays in a serving, off-ring state until it can).
//
// Proactive resharing coordinates with migration instead of racing it:
// under DHT the round runs one share group per node name and refuses
// to start while any migration is pending, so refresh deltas are never
// applied to a list that is mid-handoff.
//
// # Simulation & invariants
//
// The guarantees above only matter in combination — a crash during a
// retried batch flush while a server is partitioned exercises the
// journal, the dedup window, and the storage engine at once — so they
// are verified by a model checker rather than hand-picked scenarios.
// internal/sim drives the full stack through seed-reproducible random
// operation programs under a fault-injecting transport (outages,
// dropped and duplicated deliveries, delayed out-of-order
// redeliveries, lost responses, peer kills mid-protocol, and — under
// DHT membership churn — node joins, leaves, and mid-migration kills
// with migration traffic dropped, duplicated, and replayed) and
// checks, at every quiescent point, four invariants against the
// paper's §2 reference system (a plain centralized inverted index with
// an ACL check):
//
//   - answer-set equivalence: for every user and every term, retrieval
//     returns exactly the oracle's document set;
//   - zero orphans: every index server holds exactly the peers'
//     committed element set — interrupted updates leave nothing behind
//     and lose nothing;
//   - journal/state convergence: restarting a peer from its journal
//     reproduces its documents and element references exactly;
//   - stats and storage consistency: activity counters match stored
//     state even under redelivery, and every storage engine upholds
//     the store.Store contract (store.CheckInvariants).
//
// A failing simulation prints its seed and a delta-debugged minimal
// operation trace that reproduces the failure deterministically when
// pasted into a test. TESTING.md documents the tiers and the
// reproduction workflow.
//
// # Wire protocol
//
// Share traffic between peers, searchers, and index servers crosses
// one of two interchangeable codecs behind the same transport.API
// interface, selected by the Transport option (and the -transport flag
// of the commands):
//
//   - "binary" (the default) is a length-prefixed binary framing:
//     every message is a 4-byte little-endian length, the payload, and
//     a CRC32 — the same frame format the write-ahead log uses on
//     disk, so torn and corrupted frames are detected identically in
//     both places. Payloads are fixed-width field encodings (a share
//     is exactly 20 bytes on the wire), so encoding is a single
//     pre-sized allocation and decoding validates lengths before
//     reading. Each client holds one persistent TCP connection per
//     server and pipelines concurrent requests over it, tagging every
//     frame with a request ID so responses can return in any order;
//     a dead connection is redialed lazily with exponential backoff,
//     which is safe because mutations are exactly-once by operation-ID
//     dedup regardless of transport retries.
//   - "http" is a JSON/HTTP debug transport with the identical error
//     contract (401 authentication, 403 authorization, 400 malformed).
//     Prefer it when wire traffic should be readable in a proxy or
//     curl-able; it costs roughly an order of magnitude more CPU and
//     several times more allocations per payload than the binary codec
//     (see BENCH_index.json).
//
// Each listener serves exactly one codec (transport.ServeBinary or the
// HTTP handler), and the conformance test suite, the fault-injecting
// simulator, and the load harness all run over both codecs, so the two
// stay behaviorally identical.
//
// # Load harness & verdict gate
//
// The simulator proves correctness; cmd/zerber-loadgen (logic in
// internal/load) proves the system stays fast while everything above
// happens at once. "zerber-loadgen run" stands up a real cluster over
// a real wire — each server on its own loopback listener serving the
// binary or HTTP codec, so every operation pays genuine encoding and
// TCP costs — and drives it with
// concurrent searchers replaying the Zipfian query-frequency model
// (internal/workload.QuerySampler over a synthetic corpus), mutating
// peers holding a live document set near a target size, group
// membership churn, and periodic proactive resharing. The run emits a
// schema-versioned JSON artifact with throughput, latency percentiles,
// error counts, and provenance (commit, scale tier, seed).
//
// "zerber-loadgen compare baseline.json candidate.json" turns two such
// artifacts into a PASS/NEUTRAL/REGRESS verdict with noise-tolerant
// thresholds and exits nonzero on REGRESS; CI runs a smoke tier per
// commit against the committed LOAD_baseline.json and the nightly
// workflow runs a larger full tier, so a change that collapses
// retrieval throughput or doubles tail latency fails the pipeline
// rather than landing silently. TESTING.md covers the tiers and the
// baseline-refresh workflow.
package zerber

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"zerber/internal/auth"
	"zerber/internal/client"
	"zerber/internal/confidential"
	"zerber/internal/dht"
	"zerber/internal/field"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/proactive"
	"zerber/internal/ranking"
	"zerber/internal/server"
	"zerber/internal/store"
	"zerber/internal/transport"
	"zerber/internal/tuning"
	"zerber/internal/vocab"
	"zerber/internal/workload"
)

// Re-exported identifiers so typical applications only import zerber and
// the peer package.
type (
	// UserID identifies an enterprise user.
	UserID = auth.UserID
	// GroupID identifies a collaboration group.
	GroupID = auth.GroupID
	// Token is an authentication credential.
	Token = auth.Token
	// Heuristic selects a posting-list merging strategy.
	Heuristic = merging.Heuristic
)

// Merging heuristics (paper §6).
const (
	DFM = merging.DFM
	BFM = merging.BFM
	UDM = merging.UDM
)

// Options configures a cluster.
type Options struct {
	// N is the number of index servers; K is the secret-sharing
	// threshold (k-of-n). Defaults: N=3, K=2 (the paper's evaluation
	// setup).
	N, K int
	// Heuristic, M, R and RareCutoff configure posting-list merging; see
	// merging.Options. Defaults: DFM with M = max(1, vocab/8) lists and
	// R tuned to the distribution (mass target 4/M).
	Heuristic  Heuristic
	M          int
	R          float64
	RareCutoff float64
	// Seed makes table construction and BFM redistribution deterministic.
	Seed int64
	// TokenTTL is the authentication token lifetime (default 1h).
	TokenTTL time.Duration
	// OpaqueUserIDs enables the §7.1 extension: index servers store and
	// see only HMAC-derived pseudonyms, never real user identities, so a
	// compromised server cannot tell who issued a query or update.
	OpaqueUserIDs bool
	// FanoutWidth caps concurrently in-flight server requests per query.
	// 0 queries all servers at once; 1 reproduces the sequential client.
	FanoutWidth int
	// HedgeDelay, when positive and FanoutWidth leaves servers unstarted,
	// launches one additional server each time the delay elapses without
	// k responses (tail-latency hedging).
	HedgeDelay time.Duration
	// DecryptWorkers is the share-reconstruction worker count per query.
	// 0 means one worker per CPU; 1 decrypts serially.
	DecryptWorkers int
	// TopKMode switches searches to the early-terminating block protocol
	// (see "Top-k retrieval" above): score-ordered block rounds that stop
	// as soon as the top k are provably final, ranked by summed term
	// frequency. Off, searches fetch whole lists and rank by TF-IDF.
	TopKMode bool
	// BlockSize is the number of score-ordered posting elements fetched
	// per list per round under TopKMode (doubling each round; 0 picks
	// the default). Smaller blocks terminate earlier on easy queries;
	// larger blocks save round trips on deep ones.
	BlockSize int
	// DHTNodes, when greater than 1, fronts each of the N share slots
	// with that many physical storage nodes behind a consistent-hashing
	// router (see "Membership & rebalancing" above); JoinNode and
	// LeaveNode then change the node set online. 0 or 1 keeps the
	// monolithic one-server-per-slot layout.
	DHTNodes int
	// StoreShards selects each index server's storage engine: 1 is the
	// legacy single-lock baseline, any other value a lock-striped
	// sharded store with that many shards (rounded up to a power of
	// two); 0 picks a GOMAXPROCS-scaled default. Results and Stats are
	// identical under every setting; only server-side throughput under
	// concurrent mixed traffic changes.
	StoreShards int
	// StoreEngine overrides the StoreShards engine selection by name:
	// "memory" (single-lock baseline), "sharded" (the lock-striped
	// default), or "disk" (the log-structured on-disk engine — see
	// "Disk engine" above). Empty keeps the StoreShards selection.
	StoreEngine string
	// StoreDir is where the "disk" engine keeps its segment files; each
	// server gets its own subdirectory <StoreDir>/<server name>. Empty
	// with StoreEngine "disk" picks a fresh temporary directory (the
	// index is durable for the directory's lifetime but effectively
	// process-scoped). Ignored by the in-memory engines.
	StoreDir string
	// EncryptWorkers caps the goroutines each peer uses to split staged
	// posting elements into Shamir shares when indexing. 0 means one
	// per CPU; 1 encrypts serially. Peers created with a deterministic
	// seed always encrypt serially so their output is reproducible.
	EncryptWorkers int
	// JournalDir, when non-empty, gives every peer a crash-safe
	// mutation journal at <JournalDir>/<peer name>.journal: mutations
	// are persisted before the first network send and replayed to
	// convergence by peer.Recover after a crash (see "Mutation pipeline
	// & recovery" above). Empty disables journaling; mutations are then
	// retryable within the process but lost with it.
	JournalDir string
	// Transport names the wire codec deployments should put in front of
	// the cluster's index servers: TransportBinary (the default) or
	// TransportHTTP (the JSON debug transport). The in-process cluster
	// itself calls servers directly; this knob is recorded for harnesses
	// and the cmd binaries, which serve and dial accordingly (see the
	// "Wire protocol" section above).
	Transport string
}

// Wire codecs for Options.Transport.
const (
	// TransportBinary is the length-prefixed binary framed protocol over
	// persistent pipelined TCP connections — the production transport.
	TransportBinary = "binary"
	// TransportHTTP is the JSON/HTTP debug transport: one POST per call,
	// human-readable payloads, inspectable with curl.
	TransportHTTP = "http"
)

// Cluster is a complete in-process Zerber deployment: n index servers,
// the shared group table, the public mapping table and vocabulary, and
// the registry of document-owner peers.
type Cluster struct {
	opts    Options
	servers []*server.Server // monolithic layout only; nil under DHTNodes
	slots   []*dht.Slot      // DHT layout only; nil otherwise
	apis    []transport.API
	authSvc *auth.Service
	groups  *auth.GroupTable
	table   *merging.Table
	voc     *vocab.Vocabulary
	pseudo  *auth.Pseudonymizer // nil unless OpaqueUserIDs

	mu    sync.RWMutex
	peers map[string]*peer.Peer
}

// SuggestOptions auto-tunes the merging configuration for a corpus — the
// §7.5 future work ("methods of choosing a target value for r that adapt
// to the characteristics of the document frequency distribution"). It
// sweeps candidate list counts, measures the confidentiality/overhead
// frontier against the query statistics (uniform if queryFreqs is nil),
// and returns Options realizing the best point under the constraints:
// maxR caps the confidentiality parameter, maxOverhead caps the query
// cost ratio versus an unmerged index; zero means unconstrained (the
// knee point is chosen).
func SuggestOptions(docFreqs, queryFreqs map[string]int, maxR, maxOverhead float64) (Options, error) {
	dist, err := confidential.NewDistribution(docFreqs)
	if err != nil {
		return Options{}, fmt.Errorf("zerber: building term distribution: %w", err)
	}
	if queryFreqs == nil {
		queryFreqs = make(map[string]int, len(docFreqs))
		for term := range docFreqs {
			queryFreqs[term] = 1
		}
	}
	stats := workload.TermStats{DocFreq: docFreqs, QueryFreq: queryFreqs}
	points, err := tuning.Frontier(dist, stats, tuning.DefaultCandidates(dist.Len()), 0)
	if err != nil {
		return Options{}, err
	}
	chosen, err := tuning.Choose(points, tuning.Constraints{MaxR: maxR, MaxOverhead: maxOverhead})
	if err != nil {
		return Options{}, err
	}
	ranked := dist.TermsByProbability()
	cutoff := dist.P(ranked[len(ranked)/10])
	return Options{
		Heuristic:  DFM,
		M:          chosen.M,
		R:          1 / cutoff,
		RareCutoff: cutoff,
	}, nil
}

// NewCluster builds a cluster. docFreqs is the corpus document-frequency
// table used to construct the merging table; the paper learns it from
// the first 30% of documents (§7.5), so an estimate is fine — terms that
// appear later are hash-routed.
func NewCluster(docFreqs map[string]int, opts Options) (*Cluster, error) {
	if opts.N == 0 {
		opts.N = 3
	}
	if opts.K == 0 {
		opts.K = 2
	}
	if opts.K < 1 || opts.K > opts.N {
		return nil, fmt.Errorf("zerber: need 1 <= K <= N, got K=%d N=%d", opts.K, opts.N)
	}
	if opts.DHTNodes < 0 {
		return nil, fmt.Errorf("zerber: DHTNodes must be >= 0, got %d", opts.DHTNodes)
	}
	if opts.Heuristic == "" {
		opts.Heuristic = DFM
	}
	switch opts.Transport {
	case "":
		opts.Transport = TransportBinary
	case TransportBinary, TransportHTTP:
	default:
		return nil, fmt.Errorf("zerber: unknown transport %q (want %q or %q)",
			opts.Transport, TransportBinary, TransportHTTP)
	}
	switch opts.StoreEngine {
	case "", "memory", "sharded", "disk":
	default:
		return nil, fmt.Errorf("zerber: unknown store engine %q (want \"memory\", \"sharded\", or \"disk\")",
			opts.StoreEngine)
	}
	if opts.StoreEngine == "disk" && opts.StoreDir == "" {
		dir, err := os.MkdirTemp("", "zerber-store-")
		if err != nil {
			return nil, fmt.Errorf("zerber: creating temporary store dir: %w", err)
		}
		opts.StoreDir = dir
	}

	dist, err := confidential.NewDistribution(docFreqs)
	if err != nil {
		return nil, fmt.Errorf("zerber: building term distribution: %w", err)
	}
	if opts.M == 0 {
		opts.M = dist.Len() / 8
		if opts.M < 1 {
			opts.M = 1
		}
	}
	if opts.R == 0 {
		// Target mass 4/M per list: a few terms per list on average.
		opts.R = float64(opts.M) / 4
		if opts.R < 1 {
			opts.R = 1
		}
	}
	table, err := merging.Build(dist, merging.Options{
		Heuristic:  opts.Heuristic,
		M:          opts.M,
		R:          opts.R,
		RareCutoff: opts.RareCutoff,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("zerber: building mapping table: %w", err)
	}
	voc := vocab.NewFromTerms(table.ListedTerms())

	svc, err := auth.NewService(opts.TokenTTL)
	if err != nil {
		return nil, fmt.Errorf("zerber: creating auth service: %w", err)
	}
	groups := auth.NewGroupTable()

	c := &Cluster{
		opts:    opts,
		authSvc: svc,
		groups:  groups,
		table:   table,
		voc:     voc,
		peers:   make(map[string]*peer.Peer),
	}
	if opts.OpaqueUserIDs {
		c.pseudo, err = auth.NewPseudonymizer()
		if err != nil {
			return nil, fmt.Errorf("zerber: creating pseudonymizer: %w", err)
		}
	}
	if opts.DHTNodes > 1 {
		for i := 0; i < opts.N; i++ {
			slot, err := dht.NewSlot(field.Element(i+1), 0)
			if err != nil {
				return nil, fmt.Errorf("zerber: creating slot %d: %w", i+1, err)
			}
			for j := 0; j < opts.DHTNodes; j++ {
				name := fmt.Sprintf("n%d", j)
				node, err := c.newNodeServer(i, name)
				if err != nil {
					return nil, fmt.Errorf("zerber: slot %d: node %s: %w", i+1, name, err)
				}
				if err := slot.AddNode(name, node); err != nil {
					return nil, fmt.Errorf("zerber: slot %d: adding node %s: %w", i+1, name, err)
				}
			}
			c.slots = append(c.slots, slot)
			c.apis = append(c.apis, transport.NewLocal(slot))
		}
		return c, nil
	}
	for i := 0; i < opts.N; i++ {
		name := fmt.Sprintf("zerber-ix%d", i+1)
		st, err := c.newStore(name)
		if err != nil {
			return nil, err
		}
		s := server.New(server.Config{
			Name:   name,
			X:      field.Element(i + 1),
			Auth:   svc,
			Groups: groups,
			Store:  st,
		})
		c.servers = append(c.servers, s)
		c.apis = append(c.apis, transport.NewLocal(s))
	}
	return c, nil
}

// newStore builds one server's storage engine from the cluster options.
// The disk engine roots each server's segment files in its own
// subdirectory of StoreDir, so servers never share a log.
func (c *Cluster) newStore(name string) (store.Store, error) {
	st, err := store.NewEngine(c.opts.StoreEngine, c.opts.StoreShards,
		filepath.Join(c.opts.StoreDir, name))
	if err != nil {
		return nil, fmt.Errorf("zerber: store for %s: %w", name, err)
	}
	return st, nil
}

// newNodeServer builds the physical storage node named name for share
// slot i (x-coordinate i+1). Shares are bound to x, not to boxes, so
// every node of a slot carries the slot's x.
func (c *Cluster) newNodeServer(i int, name string) (*server.Server, error) {
	serverName := fmt.Sprintf("zerber-ix%d-%s", i+1, name)
	st, err := c.newStore(serverName)
	if err != nil {
		return nil, err
	}
	return server.New(server.Config{
		Name:   serverName,
		X:      field.Element(i + 1),
		Auth:   c.authSvc,
		Groups: c.groups,
		Store:  st,
	}), nil
}

// JoinNode adds a physical node named name to every share slot and
// migrates the lists it now owns from their previous holders, online —
// the cluster keeps serving throughout, with each list cutting over as
// its copy completes. Per-slot migration failures are aggregated in the
// returned error, but the node is a member regardless: Rebalance
// retries the unfinished moves, and until each one lands the previous
// holder stays authoritative for that list. Requires Options.DHTNodes.
func (c *Cluster) JoinNode(name string) error {
	if c.slots == nil {
		return errors.New("zerber: JoinNode requires Options.DHTNodes > 1")
	}
	var errs []error
	for i, sl := range c.slots {
		if _, ok := sl.Node(name); ok {
			errs = append(errs, fmt.Errorf("zerber: slot %d: node %s already in slot", i+1, name))
			continue
		}
		node, err := c.newNodeServer(i, name)
		if err != nil {
			errs = append(errs, fmt.Errorf("zerber: slot %d: %w", i+1, err))
			continue
		}
		if err := sl.AddNode(name, node); err != nil {
			errs = append(errs, fmt.Errorf("zerber: slot %d: %w", i+1, err))
		}
	}
	return errors.Join(errs...)
}

// LeaveNode takes the named node off every slot's ring and drains its
// lists to the remaining nodes, online. The node keeps serving each of
// its lists until that list's cutover; if some moves fail it stays in
// a draining state — still authoritative for what it holds — and
// Rebalance (or LeaveNode again) finishes the job. Removing a slot's
// last node fails: its shares would have nowhere to go.
func (c *Cluster) LeaveNode(name string) error {
	if c.slots == nil {
		return errors.New("zerber: LeaveNode requires Options.DHTNodes > 1")
	}
	var errs []error
	for i, sl := range c.slots {
		if err := sl.RemoveNode(name); err != nil {
			errs = append(errs, fmt.Errorf("zerber: slot %d: %w", i+1, err))
		}
	}
	return errors.Join(errs...)
}

// Rebalance retries every slot's unfinished migration work — moves
// parked by earlier failures and nodes still draining out — and
// returns how many per-list items remain pending afterwards. Zero
// means every list sits on its ring owner and all departed nodes are
// gone. Safe to call repeatedly; a no-op without DHTNodes.
func (c *Cluster) Rebalance() (int, error) {
	var errs []error
	pending := 0
	for i, sl := range c.slots {
		if err := sl.Rebalance(); err != nil {
			errs = append(errs, fmt.Errorf("zerber: slot %d: %w", i+1, err))
		}
		pending += sl.Pending()
	}
	return pending, errors.Join(errs...)
}

// Nodes returns the sorted physical node names serving each slot
// (including nodes still draining out), or nil without DHTNodes.
func (c *Cluster) Nodes() []string {
	if c.slots == nil {
		return nil
	}
	return c.slots[0].NodeNames()
}

// ident maps a real user ID to the form the index servers see: the ID
// itself, or its pseudonym under the OpaqueUserIDs extension.
func (c *Cluster) ident(user UserID) UserID {
	if c.pseudo != nil {
		return c.pseudo.Pseudonym(user)
	}
	return user
}

// AddUser puts a user into a group on every index server.
func (c *Cluster) AddUser(user UserID, group GroupID) { c.groups.Add(c.ident(user), group) }

// RemoveUser revokes a user's group membership immediately.
func (c *Cluster) RemoveUser(user UserID, group GroupID) bool {
	return c.groups.Remove(c.ident(user), group)
}

// IssueToken authenticates a user with the enterprise service. Under
// OpaqueUserIDs the token carries only the user's pseudonym.
func (c *Cluster) IssueToken(user UserID) Token { return c.authSvc.Issue(c.ident(user)) }

// NewPeer registers a document-owner peer. seed controls the peer's
// randomness (0 means crypto-random sharing polynomials). Document IDs
// must be unique across the cluster's peers — the paper's document ID
// "must identify both the machine on which the document is hosted and
// the document within that machine" (§5.4.2) — so partition the 24-bit
// ID space among sites.
func (c *Cluster) NewPeer(name string, seed int64) (*peer.Peer, error) {
	cfg := peer.Config{
		Name:           name,
		Servers:        c.apis,
		K:              c.opts.K,
		Table:          c.table,
		Vocab:          c.voc,
		EncryptWorkers: c.opts.EncryptWorkers,
	}
	if c.opts.JournalDir != "" {
		if err := os.MkdirAll(c.opts.JournalDir, 0o755); err != nil {
			return nil, fmt.Errorf("zerber: journal directory: %w", err)
		}
		cfg.JournalPath = filepath.Join(c.opts.JournalDir, name+".journal")
	}
	if seed != 0 {
		cfg.Rand = newSeededReader(seed)
	}
	p, err := peer.New(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.peers[name]; dup {
		return nil, fmt.Errorf("zerber: peer %q already registered", name)
	}
	c.peers[name] = p
	return p, nil
}

// Result is one ranked search hit, with the snippet fetched from the
// hosting peer (Algorithm 2's final step).
type Result struct {
	DocID   uint32
	Score   float64
	Snippet string
	Peer    string
}

// Searcher is a querying user's handle.
type Searcher struct {
	c       *client.Client
	cluster *Cluster
	// topK selects the early-terminating block protocol (Options.TopKMode).
	topK bool
}

// Searcher creates a query client over the cluster's servers, tuned by
// the cluster's FanoutWidth, HedgeDelay, DecryptWorkers, TopKMode, and
// BlockSize options.
func (c *Cluster) Searcher() (*Searcher, error) {
	cl, err := client.New(c.apis, c.opts.K, c.table, c.voc)
	if err != nil {
		return nil, err
	}
	cl.SetTuning(client.Tuning{
		Fanout:         c.opts.FanoutWidth,
		HedgeDelay:     c.opts.HedgeDelay,
		DecryptWorkers: c.opts.DecryptWorkers,
		BlockSize:      c.opts.BlockSize,
	})
	return &Searcher{c: cl, cluster: c, topK: c.opts.TopKMode}, nil
}

// Search runs a ranked keyword query and resolves snippets for the top-K
// results from the hosting peers.
func (s *Searcher) Search(tok Token, query []string, topK int) ([]Result, error) {
	return s.SearchContext(context.Background(), tok, query, topK)
}

// SearchContext is Search bounded by ctx: cancellation aborts the server
// fan-out and the decrypt stage. Under TopKMode the query runs the
// early-terminating block protocol instead of fetching whole lists.
func (s *Searcher) SearchContext(ctx context.Context, tok Token, query []string, topK int) ([]Result, error) {
	ranked, _, err := s.ranked(ctx, tok, query, topK)
	if err != nil {
		return nil, err
	}
	return s.cluster.resolveSnippets(tok, query, ranked)
}

// SearchStats runs a query and additionally returns retrieval statistics
// (elements fetched, false positives, and under TopKMode the TA
// instrumentation) for the bandwidth/efficiency experiments.
func (s *Searcher) SearchStats(tok Token, query []string, topK int) ([]Result, client.Stats, error) {
	ranked, stats, err := s.ranked(context.Background(), tok, query, topK)
	if err != nil {
		return nil, stats, err
	}
	res, err := s.cluster.resolveSnippets(tok, query, ranked)
	return res, stats, err
}

// ranked dispatches to the configured retrieval protocol.
func (s *Searcher) ranked(ctx context.Context, tok Token, query []string, topK int) ([]ranking.ScoredDoc, client.Stats, error) {
	if s.topK {
		return s.c.SearchTopKContext(ctx, tok, query, topK)
	}
	return s.c.SearchContext(ctx, tok, query, topK)
}

var errNoPeer = errors.New("zerber: no peer hosts the document")

// resolveSnippets asks the hosting peers for result snippets, enforcing
// the peer-side group check with the caller's verified identity.
func (c *Cluster) resolveSnippets(tok Token, query []string, ranked []ranking.ScoredDoc) ([]Result, error) {
	user, err := c.authSvc.Verify(tok)
	if err != nil {
		return nil, err
	}
	groupSet := c.groups.GroupSetOf(user)

	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Result, 0, len(ranked))
	for _, r := range ranked {
		res := Result{DocID: r.DocID, Score: r.Score}
		for name, p := range c.peers {
			if _, ok := p.Document(r.DocID); !ok {
				continue
			}
			snippet, err := p.Snippet(r.DocID, query, 0, groupSet)
			if err != nil {
				return nil, fmt.Errorf("zerber: snippet for doc %d: %w", r.DocID, err)
			}
			res.Snippet, res.Peer = snippet, name
			break
		}
		if res.Peer == "" {
			return nil, fmt.Errorf("%w: %d", errNoPeer, r.DocID)
		}
		out = append(out, res)
	}
	return out, nil
}

// ProactiveReshare runs one proactive secret-resharing round over all
// index servers (§5.1 / Herzberg et al. [21]): every stored share is
// refreshed in place, so shares an adversary captured earlier can no
// longer be combined with current ones. Queries keep working throughout;
// the shared secrets are unchanged. It returns the number of posting
// elements refreshed.
//
// Under DHTNodes the round runs one share group per node name: the
// nodes named name across the n slots hold the same posting lists at
// x = 1..n, so together they form a complete k-of-n share set. The
// round refuses to start while any migration work is pending — a list
// mid-handoff exists on two nodes of one slot, and refreshing only one
// copy would destroy the element — so rebalance to quiescence first.
// A mutation racing the round is detected and rolled back cleanly
// (proactive.ErrConcurrentMutation); retry once the cluster is quiet.
func (c *Cluster) ProactiveReshare() (int, error) {
	if c.slots == nil {
		return proactive.Reshare(c.servers, c.opts.K, nil)
	}
	names := c.slots[0].NodeNames()
	for i, sl := range c.slots {
		if p := sl.Pending(); p > 0 {
			return 0, fmt.Errorf("zerber: slot %d has %d pending migrations; rebalance before resharing", i+1, p)
		}
		if !equalNames(names, sl.NodeNames()) {
			return 0, fmt.Errorf("zerber: slot %d serves a different node set; rebalance before resharing", i+1)
		}
	}
	total := 0
	for _, name := range names {
		group := make([]*server.Server, len(c.slots))
		for i, sl := range c.slots {
			s, ok := sl.Node(name)
			if !ok {
				return total, fmt.Errorf("zerber: node %s vanished from slot %d mid-round", name, i+1)
			}
			group[i] = s
		}
		n, err := proactive.Reshare(group, c.opts.K, nil)
		total += n
		if err != nil {
			return total, fmt.Errorf("zerber: resharing node %s: %w", name, err)
		}
	}
	return total, nil
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// K returns the secret-sharing threshold.
func (c *Cluster) K() int { return c.opts.K }

// Transport returns the configured wire codec (TransportBinary or
// TransportHTTP).
func (c *Cluster) Transport() string { return c.opts.Transport }

// N returns the number of share slots (logical index servers).
func (c *Cluster) N() int { return len(c.apis) }

// RValue returns the resulting confidentiality parameter of the mapping
// table (formula (7)).
func (c *Cluster) RValue() float64 { return c.table.RValue() }

// Table exposes the public mapping table (it is public by design).
func (c *Cluster) Table() *merging.Table { return c.table }

// Vocab exposes the public vocabulary.
func (c *Cluster) Vocab() *vocab.Vocabulary { return c.voc }

// Servers exposes the underlying index servers for instrumentation and
// adversary simulation; applications use Searcher and peers instead.
// Under DHTNodes it returns every physical node, slot-major, reflecting
// the node set at the time of the call.
func (c *Cluster) Servers() []*server.Server {
	if c.slots != nil {
		var out []*server.Server
		for _, sl := range c.slots {
			for _, name := range sl.NodeNames() {
				if s, ok := sl.Node(name); ok {
					out = append(out, s)
				}
			}
		}
		return out
	}
	out := make([]*server.Server, len(c.servers))
	copy(out, c.servers)
	return out
}

// APIs exposes the transport handles (e.g. to build a custom client).
func (c *Cluster) APIs() []transport.API {
	out := make([]transport.API, len(c.apis))
	copy(out, c.apis)
	return out
}

// WireTargets returns the endpoints a deployment puts behind its wire
// listeners, one per share slot: the index servers themselves in the
// monolithic layout, or each slot's router under DHTNodes — wire
// clients keep addressing n logical servers while physical nodes join
// and leave behind each slot.
func (c *Cluster) WireTargets() []transport.API {
	out := make([]transport.API, 0, len(c.apis))
	if c.slots != nil {
		for _, sl := range c.slots {
			out = append(out, sl)
		}
		return out
	}
	for _, s := range c.servers {
		out = append(out, s)
	}
	return out
}
