// Command zerber-loadgen drives a real multi-server Zerber cluster over
// the HTTP transport under sustained mixed traffic and judges runs
// against each other.
//
// Two subcommands:
//
//	zerber-loadgen run -scale smoke|full [-transport http|binary]
//	                   [-store-engine memory|sharded|disk] [-dht-nodes N]
//	                   [-seed N] [-duration D]
//	                   [-commit SHA] [-out FILE] [-q]
//
// runs one closed-loop load session (internal/load): N concurrent users
// issuing Zipfian searches while peers index/update/delete documents
// and group churn, node join/leave churn with its online list
// migration, plus proactive resharing run in the background. The
// schema-versioned JSON artifact goes to -out (atomically, via temp
// file + rename) or stdout.
//
//	zerber-loadgen compare [-out FILE] [threshold flags] BASELINE CANDIDATE
//
// diffs two artifacts metric by metric and renders a PASS / NEUTRAL /
// REGRESS verdict table (markdown) on stdout — appended to
// $GITHUB_STEP_SUMMARY when that variable is set, so CI runs show the
// table on the workflow summary page — and exits nonzero on REGRESS.
// -out additionally records the verdict as a JSON artifact. Thresholds
// default to noise-tolerant values suited to cross-machine comparison
// (see load.DefaultThresholds); tighten them with flags when baseline
// and candidate ran on the same hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zerber/internal/load"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "compare":
		compareCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: zerber-loadgen run|compare [flags]  (see -h of each subcommand)")
	os.Exit(2)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		scale     = fs.String("scale", "smoke", "scale tier: smoke (CI) or full (nightly)")
		seed      = fs.Int64("seed", 0, "workload seed override (0 = tier default)")
		duration  = fs.Duration("duration", 0, "measured-phase duration override (0 = tier default)")
		transport = fs.String("transport", "http", "wire codec the cluster serves and dials: http or binary")
		engine    = fs.String("store-engine", "", "storage engine the servers run on: memory, sharded, or disk (empty = tier default)")
		dhtNodes  = fs.Int("dht-nodes", -1, "physical nodes per share slot (-1 = tier default; 0 or 1 = monolithic, disables node churn)")
		commit    = fs.String("commit", "", "commit SHA recorded in the artifact meta")
		out       = fs.String("out", "", "artifact path (empty = stdout)")
		quiet     = fs.Bool("q", false, "suppress progress logging")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}

	cfg, err := load.ConfigFor(*scale)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *duration != 0 {
		cfg.Duration = *duration
	}
	cfg.Transport = *transport
	cfg.StoreEngine = *engine
	cfg.Commit = *commit
	if *dhtNodes >= 0 {
		cfg.DHTNodes = *dhtNodes
		if cfg.DHTNodes < 2 {
			cfg.NodeChurnEvery = 0
		}
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	start := time.Now()
	report, err := load.Run(cfg)
	if err != nil {
		fatal(err)
	}
	data, err := report.Encode()
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := load.WriteFileAtomic(*out, data); err != nil {
		fatal(fmt.Errorf("writing %s: %w", *out, err))
	}
	fmt.Fprintf(os.Stderr, "zerber-loadgen: %s run complete in %v\n",
		cfg.Scale, time.Since(start).Round(time.Millisecond))
}

func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var th load.Thresholds
	var (
		out = fs.String("out", "", "verdict artifact path (JSON; empty = none)")
	)
	fs.Float64Var(&th.LatencyRegress, "regress-latency", 0, "latency ratio at or above which REGRESS (0 = default)")
	fs.Float64Var(&th.LatencyPass, "pass-latency", 0, "latency ratio at or below which PASS (0 = default)")
	fs.Float64Var(&th.ThroughputRegress, "regress-throughput", 0, "throughput ratio at or below which REGRESS (0 = default)")
	fs.Float64Var(&th.ThroughputPass, "pass-throughput", 0, "throughput ratio at or above which PASS (0 = default)")
	fs.Float64Var(&th.ErrorRateSlack, "error-slack", 0, "tolerated error-rate increase over baseline (0 = default)")
	fs.Int64Var(&th.MinOps, "min-ops", 0, "minimum successful ops per side before a kind is judged (0 = default)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: zerber-loadgen compare [flags] BASELINE.json CANDIDATE.json")
		os.Exit(2)
	}

	base, err := load.ReadReport(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	cand, err := load.ReadReport(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	rows, overall, err := load.Compare(base, cand, th)
	if err != nil {
		fatal(err)
	}

	table := load.RenderTable(base, cand, rows, overall)
	fmt.Print(table)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if f, ferr := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); ferr == nil {
			fmt.Fprintf(f, "%s\n", table)
			f.Close()
		}
	}
	if *out != "" {
		v := load.VerdictReport{
			Schema:    load.VerdictSchema,
			Overall:   overall,
			Baseline:  base.Meta,
			Candidate: cand.Meta,
			Metrics:   rows,
		}
		data, err := v.Encode()
		if err != nil {
			fatal(err)
		}
		if err := load.WriteFileAtomic(*out, data); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *out, err))
		}
	}
	if overall == load.Regress {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zerber-loadgen: %v\n", err)
	os.Exit(1)
}
