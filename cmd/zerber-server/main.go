// Command zerber-server runs one Zerber index server.
//
// Each of the n servers in a deployment runs this binary on a box owned
// by a different part of the enterprise (paper §5). All servers share the
// enterprise authentication key and replicate the group table; each has
// its own unique x-coordinate.
//
// Usage:
//
//	zerber-server -addr :8291 -x 1 -key 000102...1f \
//	              -groups alice:1,alice:2,bob:2
//
// -transport selects the wire codec the listener serves: binary (the
// default framed protocol; clients dial it with a bare host:port or
// binary:// address) or http (the JSON debug transport; clients dial
// http://). See the "Wire protocol" section of the zerber package docs.
//
// The key is the 32-byte hex HMAC key of the enterprise authentication
// service (see cmd/zerber-search -issue for minting matching tokens).
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"zerber/internal/auth"
	"zerber/internal/durable"
	"zerber/internal/field"
	"zerber/internal/server"
	"zerber/internal/store"
	"zerber/internal/transport"
)

func main() {
	var (
		addr   = flag.String("addr", ":8291", "listen address")
		x      = flag.Uint64("x", 1, "this server's public Shamir x-coordinate (unique, non-zero)")
		keyHex = flag.String("key", "", "32-byte hex HMAC key of the enterprise auth service")
		groups = flag.String("groups", "", "comma-separated user:group memberships, e.g. alice:1,bob:2")
		name   = flag.String("name", "", "server name for logs (default ix<x>)")
		ttl    = flag.Duration("token-ttl", time.Hour, "token lifetime")
		walAt  = flag.String("wal", "", "write-ahead log path for crash recovery (empty = in-memory only)")
		shards = flag.Int("store-shards", 0, "storage engine lock stripes: 1 = single-lock baseline, 0 = GOMAXPROCS-scaled sharded default")
		engine = flag.String("store-engine", "", "storage engine: memory, sharded, or disk (empty = -store-shards selection)")
		stdir  = flag.String("store-dir", "", "segment directory for -store-engine disk (default <name>.store)")
		wire   = flag.String("transport", "binary", "wire codec served on -addr: binary or http")
	)
	flag.Parse()

	if *keyHex == "" {
		log.Fatal("zerber-server: -key is required (shared enterprise auth key)")
	}
	key, err := hex.DecodeString(*keyHex)
	if err != nil || len(key) < 16 {
		log.Fatalf("zerber-server: bad -key: %v (need >= 16 hex bytes)", err)
	}
	xe, err := field.Check(*x)
	if err != nil || xe == 0 {
		log.Fatalf("zerber-server: bad -x %d: must be a non-zero canonical field element", *x)
	}
	if *name == "" {
		*name = fmt.Sprintf("ix%d", *x)
	}

	gt := auth.NewGroupTable()
	if *groups != "" {
		for _, pair := range strings.Split(*groups, ",") {
			parts := strings.SplitN(strings.TrimSpace(pair), ":", 2)
			if len(parts) != 2 {
				log.Fatalf("zerber-server: bad -groups entry %q (want user:group)", pair)
			}
			gid, err := strconv.ParseUint(parts[1], 10, 32)
			if err != nil {
				log.Fatalf("zerber-server: bad group ID in %q: %v", pair, err)
			}
			gt.Add(auth.UserID(parts[0]), auth.GroupID(gid))
		}
	}

	if *stdir == "" {
		*stdir = *name + ".store"
	}
	st, err := store.NewEngine(*engine, *shards, *stdir)
	if err != nil {
		log.Fatalf("zerber-server: %v", err)
	}
	cfg := server.Config{
		Name:   *name,
		X:      xe,
		Auth:   auth.NewServiceWithKey(key, *ttl),
		Groups: gt,
		Store:  st,
	}
	var api transport.API
	if *walAt != "" {
		ds, err := durable.Open(cfg, *walAt)
		if err != nil {
			log.Fatalf("zerber-server: %v", err)
		}
		defer ds.Close()
		log.Printf("zerber-server %s: recovered %d log records from %s", *name, ds.Recovered, *walAt)
		api = ds
	} else {
		api = server.New(cfg)
	}
	if *wire != "binary" && *wire != "http" {
		log.Fatalf("zerber-server: unknown -transport %q (want binary or http)", *wire)
	}
	log.Printf("zerber-server %s: listening on %s (%s transport, x=%d, %d group memberships)",
		*name, *addr, *wire, xe, len(strings.Split(*groups, ",")))
	if *wire == "binary" {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatalf("zerber-server: %v", err)
		}
		transport.ServeBinary(ln, api)
		select {} // serve until killed
	}
	log.Fatal(http.ListenAndServe(*addr, transport.NewHTTPHandler(api)))
}
