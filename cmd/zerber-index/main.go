// Command zerber-index is the document owner's tool: it indexes a
// directory of text documents into a running Zerber cluster, optionally
// building the public mapping table and vocabulary first.
//
// Typical flow (after starting n zerber-server processes):
//
//	# one-time: learn corpus statistics and publish the mapping table
//	zerber-index -build-table -m 64 -r 16 -docs ./shared -table table.json -vocab vocab.json
//
//	# index the documents as group 1
//	zerber-index -servers h1:8291,h2:8291,h3:8291 \
//	             -k 2 -key <hex> -user alice -group 1 \
//	             -table table.json -vocab vocab.json -docs ./shared
//
// Documents are flushed in one shuffled batch (paper §5.4.1) so an
// adversary watching updates cannot correlate elements by document.
// A docmap.json mapping document IDs to file names is written next to
// the table for zerber-search to label results.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"zerber/internal/auth"
	"zerber/internal/confidential"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/textproc"
	"zerber/internal/transport"
	"zerber/internal/vocab"
)

func main() {
	var (
		servers    = flag.String("servers", "", "comma-separated index server addresses (host:port or binary:// for the binary codec, http:// for JSON/HTTP)")
		k          = flag.Int("k", 2, "secret-sharing threshold")
		keyHex     = flag.String("key", "", "enterprise auth key (hex)")
		user       = flag.String("user", "", "authenticated user")
		group      = flag.Uint("group", 1, "group to share the documents with")
		tablePath  = flag.String("table", "table.json", "mapping table file")
		vocabPath  = flag.String("vocab", "vocab.json", "vocabulary file")
		docsDir    = flag.String("docs", ".", "directory of documents to index (*.txt, *.md)")
		buildTable = flag.Bool("build-table", false, "build table+vocab from the corpus statistics and exit")
		m          = flag.Int("m", 64, "number of merged posting lists (build-table)")
		r          = flag.Float64("r", 16, "target confidentiality parameter r (build-table)")
		heuristic  = flag.String("heuristic", "DFM", "merging heuristic: DFM, BFM, UDM (build-table)")
	)
	flag.Parse()

	files, contents := readDocs(*docsDir)
	if len(files) == 0 {
		log.Fatalf("zerber-index: no .txt/.md documents under %s", *docsDir)
	}

	if *buildTable {
		buildAndWrite(contents, *tablePath, *vocabPath, *m, *r, merging.Heuristic(*heuristic))
		return
	}

	if *servers == "" || *keyHex == "" || *user == "" {
		log.Fatal("zerber-index: -servers, -key and -user are required for indexing")
	}
	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		log.Fatalf("zerber-index: bad -key: %v", err)
	}
	table, voc := loadTableVocab(*tablePath, *vocabPath)

	var apis []transport.API
	for _, u := range strings.Split(*servers, ",") {
		c, err := transport.Dial(strings.TrimSpace(u), 10*time.Second)
		if err != nil {
			log.Fatalf("zerber-index: %v", err)
		}
		apis = append(apis, c)
	}

	p, err := peer.New(peer.Config{
		Name: "zerber-index", Servers: apis, K: *k, Table: table, Vocab: voc,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := auth.NewServiceWithKey(key, time.Hour)
	tok := svc.Issue(auth.UserID(*user))

	batch := p.NewBatch()
	docmap := make(map[uint32]string, len(files))
	for i, name := range files {
		id := uint32(i + 1)
		docmap[id] = name
		if err := batch.Add(peer.Document{
			ID: id, Name: name, Content: contents[i], Group: auth.GroupID(*group),
		}); err != nil {
			log.Fatalf("zerber-index: %s: %v", name, err)
		}
	}
	elements := batch.Elements()
	if err := batch.Flush(tok); err != nil {
		log.Fatalf("zerber-index: flush: %v", err)
	}
	writeJSON(filepath.Join(filepath.Dir(*tablePath), "docmap.json"), docmap)
	fmt.Printf("indexed %d documents (%d posting elements) to %d servers as group %d\n",
		len(files), elements, len(apis), *group)
}

func readDocs(dir string) (names []string, contents []string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatalf("zerber-index: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		if ext != ".txt" && ext != ".md" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			log.Fatalf("zerber-index: %v", err)
		}
		names = append(names, e.Name())
		contents = append(contents, string(data))
	}
	sort.Sort(byName{names, contents})
	return names, contents
}

type byName struct {
	names    []string
	contents []string
}

func (b byName) Len() int           { return len(b.names) }
func (b byName) Less(i, j int) bool { return b.names[i] < b.names[j] }
func (b byName) Swap(i, j int) {
	b.names[i], b.names[j] = b.names[j], b.names[i]
	b.contents[i], b.contents[j] = b.contents[j], b.contents[i]
}

func buildAndWrite(contents []string, tablePath, vocabPath string, m int, r float64, h merging.Heuristic) {
	dfs := make(map[string]int)
	for _, c := range contents {
		for term := range textproc.TermCounts(c) {
			dfs[term]++
		}
	}
	dist, err := confidential.NewDistribution(dfs)
	if err != nil {
		log.Fatalf("zerber-index: %v", err)
	}
	table, err := merging.Build(dist, merging.Options{Heuristic: h, M: m, R: r})
	if err != nil {
		log.Fatalf("zerber-index: building table: %v", err)
	}
	voc := vocab.NewFromTerms(table.ListedTerms())
	writeJSON(tablePath, table)
	writeJSON(vocabPath, voc)
	fmt.Printf("built %s table: M=%d, resulting r=%.4g (1/r=%.4g), %d listed terms\n",
		h, table.M(), table.RValue(), table.MinMass(), table.NumListed())
}

func loadTableVocab(tablePath, vocabPath string) (*merging.Table, *vocab.Vocabulary) {
	var table merging.Table
	readJSON(tablePath, &table)
	voc := vocab.New()
	readJSON(vocabPath, voc)
	return &table, voc
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatalf("zerber-index: encoding %s: %v", path, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("zerber-index: %v", err)
	}
}

func readJSON(path string, v any) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("zerber-index: %v (run with -build-table first?)", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatalf("zerber-index: decoding %s: %v", path, err)
	}
}
