// Command zerber-experiments regenerates the tables and figures of the
// paper's evaluation (§7) on the synthetic corpora.
//
// Usage:
//
//	zerber-experiments                 # run everything at the scaled size
//	zerber-experiments -exp table1     # one experiment
//	zerber-experiments -docs 50000 -vocab 200000 -queries 500000
//	zerber-experiments -full           # paper-sized corpora (slow, much RAM)
//
// Each run prints paper-style rows; EXPERIMENTS.md records the mapping
// to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zerber/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: all, "+strings.Join(experiments.IDs(), ", "))
		seed    = flag.Int64("seed", 42, "corpus generator seed")
		docs    = flag.Int("docs", 0, "ODP-like corpus size (0 = scaled default 20000)")
		vocab   = flag.Int("vocab", 0, "vocabulary size (0 = scaled default 60000)")
		queries = flag.Int("queries", 0, "query log size (0 = scaled default 100000)")
		full    = flag.Bool("full", false, "use the paper's full-scale sizes (237k docs, 987.7k terms, 7M queries)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed: *seed, NumDocs: *docs, VocabSize: *vocab,
		NumQueries: *queries, FullScale: *full,
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating corpora (seed=%d)...\n", *seed)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "corpora ready in %v: %d docs, %d realized terms, %d queries\n\n",
		time.Since(start).Round(time.Millisecond), len(env.ODP.Docs), len(env.Ranked), len(env.Log.Queries))

	if *exp == "all" {
		reports, err := env.All()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, r := range reports {
			r.Print(os.Stdout)
		}
		return
	}
	r, err := env.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	r.Print(os.Stdout)
}
