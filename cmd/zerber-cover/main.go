// zerber-cover summarizes a Go coverage profile per package and
// enforces the committed coverage baseline.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	go run ./cmd/zerber-cover -profile cover.out -baseline COVERAGE.txt
//
// It prints a per-package statement-coverage table plus the total, and
// exits non-zero if the total falls below the floor recorded in the
// baseline file (a single number, in percent). CI runs this so coverage
// can only ratchet: lowering the floor requires editing COVERAGE.txt in
// the same change that explains why.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type pkgCov struct {
	stmts, covered int
}

func main() {
	profile := flag.String("profile", "cover.out", "coverage profile written by go test -coverprofile")
	baseline := flag.String("baseline", "", "file holding the minimum total coverage percentage (empty: report only)")
	flag.Parse()

	byPkg, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zerber-cover:", err)
		os.Exit(1)
	}

	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	var total pkgCov
	for _, p := range pkgs {
		c := byPkg[p]
		total.stmts += c.stmts
		total.covered += c.covered
		fmt.Printf("%-40s %6.1f%%  (%d/%d statements)\n", p, pct(c), c.covered, c.stmts)
	}
	fmt.Printf("%-40s %6.1f%%  (%d/%d statements)\n", "TOTAL", pct(total), total.covered, total.stmts)

	if *baseline == "" {
		return
	}
	floor, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zerber-cover:", err)
		os.Exit(1)
	}
	if got := pct(total); got < floor {
		fmt.Fprintf(os.Stderr, "zerber-cover: total coverage %.1f%% fell below the %.1f%% baseline (%s)\n",
			got, floor, *baseline)
		os.Exit(1)
	}
	fmt.Printf("baseline: %.1f%% (ok)\n", floor)
}

func pct(c pkgCov) float64 {
	if c.stmts == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.stmts)
}

// parseProfile aggregates a coverage profile by package directory.
// Profile lines are "file.go:startL.startC,endL.endC numStmts hitCount".
func parseProfile(path string) (map[string]pkgCov, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]pkgCov)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || !strings.Contains(fields[0], ":") {
			return nil, fmt.Errorf("malformed profile line %q", line)
		}
		file := fields[0][:strings.LastIndex(fields[0], ":")]
		pkg := file
		if i := strings.LastIndex(file, "/"); i >= 0 {
			pkg = file[:i]
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("malformed statement count in %q", line)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("malformed hit count in %q", line)
		}
		c := out[pkg]
		c.stmts += stmts
		if hits > 0 {
			c.covered += stmts
		}
		out[pkg] = c
	}
	return out, sc.Err()
}

func readBaseline(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	// The file may carry comment lines; the floor is the first line that
	// parses as a number.
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strconv.ParseFloat(line, 64)
	}
	return 0, fmt.Errorf("no baseline number in %s", path)
}
