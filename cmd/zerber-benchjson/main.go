// Command zerber-benchjson converts `go test -bench -benchmem` output on
// stdin into a schema-versioned JSON artifact on stdout:
//
//	{
//	  "schema": "zerber-bench/v1",
//	  "meta": {"commit": "abc1234", "scale": "benchtime-0.5s", ...},
//	  "results": {
//	    "BenchmarkEncryptBatch": {"ns_per_op": 184200, "bytes_per_op": 524728, "allocs_per_op": 7},
//	    ...
//	  }
//	}
//
// The meta block uses the same fields as the load-harness artifact
// (internal/load.Meta) — commit SHA, scale, Go runtime — so bench and
// load artifacts are comparable across runs. -commit and -scale stamp
// the provenance; benchmark names have their -GOMAXPROCS suffix
// stripped. It backs `make benchjson`, which records the
// indexing-pipeline benchmarks as BENCH_index.json so the performance
// trajectory of the write path is tracked alongside the code.
// Non-benchmark lines are ignored; benchmarks that appear multiple
// times (e.g. -count > 1) keep the last measurement.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"zerber/internal/load"
)

// measurement is one benchmark result row. Extra holds custom metrics
// reported through b.ReportMetric (e.g. the migration benchmark's
// lists/sec), keyed by their unit string.
type measurement struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parseLine extracts a measurement from one `go test -bench` output
// line, or reports ok=false for any other line. The format is
//
//	BenchmarkName-8   	     100	  11111 ns/op	  2048 B/op	   12 allocs/op
//
// with B/op and allocs/op present only under -benchmem.
func parseLine(line string) (name string, m measurement, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", measurement{}, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	found := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp, found = v, true
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units ("lists/sec", ...); the bare
			// iteration count has no unit and is skipped.
			if strings.Contains(fields[i+1], "/") {
				if m.Extra == nil {
					m.Extra = make(map[string]float64)
				}
				m.Extra[fields[i+1]] = v
			}
		}
	}
	return name, m, found
}

func main() {
	var (
		commit = flag.String("commit", "", "commit SHA recorded in the artifact meta")
		scale  = flag.String("scale", "bench", "scale label recorded in the artifact meta (e.g. benchtime-0.5s)")
	)
	flag.Parse()

	results := make(map[string]measurement)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, m, ok := parseLine(sc.Text()); ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "zerber-benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "zerber-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	meta, err := json.Marshal(load.NewMeta(*commit, *scale, 0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "zerber-benchjson: %v\n", err)
		os.Exit(1)
	}
	// Deterministic key order for committed artifacts.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("{\n")
	fmt.Fprintf(&sb, "  \"schema\": %q,\n", load.BenchSchema)
	fmt.Fprintf(&sb, "  \"meta\": %s,\n", meta)
	sb.WriteString("  \"results\": {\n")
	for i, n := range names {
		row, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintf(os.Stderr, "zerber-benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(&sb, "    %q: %s", n, row)
		if i < len(names)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("  }\n}\n")
	os.Stdout.WriteString(sb.String())
}
