// Command zerber-peer runs a document owner's site daemon: it indexes a
// directory of documents into the Zerber cluster (one shuffled batch)
// and then serves result snippets and full documents to authorized
// searchers over HTTP — the peer half of Algorithm 2.
//
// Usage:
//
//	zerber-peer -addr :8301 \
//	            -servers h1:8291,h2:8291,h3:8291 \
//	            -k 2 -key <hex> -user alice -group 1 \
//	            -table table.json -vocab vocab.json \
//	            -groups alice:1,bob:1 \
//	            -docs ./shared
//
// -groups replicates the user-group table locally so the peer can check
// snippet access itself (each site trusts its own group view, like each
// index server does).
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"zerber/internal/auth"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/transport"
	"zerber/internal/vocab"
)

func main() {
	var (
		addr      = flag.String("addr", ":8301", "snippet service listen address")
		servers   = flag.String("servers", "", "comma-separated index server addresses (host:port or binary:// for the binary codec, http:// for JSON/HTTP)")
		k         = flag.Int("k", 2, "secret-sharing threshold")
		keyHex    = flag.String("key", "", "enterprise auth key (hex)")
		user      = flag.String("user", "", "owner user ID")
		group     = flag.Uint("group", 1, "group to share the documents with")
		tablePath = flag.String("table", "table.json", "mapping table file")
		vocabPath = flag.String("vocab", "vocab.json", "vocabulary file")
		docsDir   = flag.String("docs", ".", "directory of documents (*.txt, *.md)")
		groupsArg = flag.String("groups", "", "user:group memberships for the local access check")
		name      = flag.String("name", "zerber-peer", "peer/site name")
		journal   = flag.String("journal", "", "mutation journal directory (crash-safe, exactly-once updates; empty = no journal)")
	)
	flag.Parse()
	if *servers == "" || *keyHex == "" || *user == "" {
		log.Fatal("zerber-peer: -servers, -key and -user are required")
	}
	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		log.Fatalf("zerber-peer: bad -key: %v", err)
	}

	var table merging.Table
	readJSON(*tablePath, &table)
	voc := vocab.New()
	readJSON(*vocabPath, voc)

	var apis []transport.API
	for _, u := range strings.Split(*servers, ",") {
		c, err := transport.Dial(strings.TrimSpace(u), 10*time.Second)
		if err != nil {
			log.Fatalf("zerber-peer: %v", err)
		}
		apis = append(apis, c)
	}
	cfg := peer.Config{
		Name: *name, Servers: apis, K: *k, Table: &table, Vocab: voc,
	}
	if *journal != "" {
		if err := os.MkdirAll(*journal, 0o755); err != nil {
			log.Fatalf("zerber-peer: journal directory: %v", err)
		}
		cfg.JournalPath = filepath.Join(*journal, *name+".journal")
	}
	p, err := peer.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	groupTable := auth.NewGroupTable()
	if *groupsArg != "" {
		for _, pair := range strings.Split(*groupsArg, ",") {
			parts := strings.SplitN(strings.TrimSpace(pair), ":", 2)
			if len(parts) != 2 {
				log.Fatalf("zerber-peer: bad -groups entry %q", pair)
			}
			gid, err := strconv.ParseUint(parts[1], 10, 32)
			if err != nil {
				log.Fatalf("zerber-peer: bad group in %q: %v", pair, err)
			}
			groupTable.Add(auth.UserID(parts[0]), auth.GroupID(gid))
		}
	}

	svc := auth.NewServiceWithKey(key, time.Hour)
	tok := svc.Issue(auth.UserID(*user))

	// A journaled peer may have crashed mid-mutation: converge the
	// in-flight operations before indexing anything new.
	if n := p.PendingOps(); n > 0 {
		done, err := p.Recover(tok)
		if err != nil {
			log.Fatalf("zerber-peer: recovering %d in-flight mutations: %v", n, err)
		}
		fmt.Printf("%s: recovered %d in-flight mutation(s) from the journal\n", *name, done)
	}

	// Index the directory in one shuffled batch. Documents the journal
	// already knows go through the diff-update path instead: re-batching
	// them would insert a second generation of elements under fresh
	// global IDs, while the update sends only what changed (nothing, for
	// an unchanged file). Document IDs are positional (sorted filename
	// order), so renaming or inserting files reassigns IDs and the
	// restart rewrites the shifted documents — correct, just not
	// traffic-free; a shrunken directory is reconciled below by deleting
	// the journal-known IDs past the end.
	batch := p.NewBatch()
	names := readDir(*docsDir)
	updated := 0
	for i, file := range names {
		data, err := os.ReadFile(filepath.Join(*docsDir, file))
		if err != nil {
			log.Fatalf("zerber-peer: %v", err)
		}
		doc := peer.Document{
			ID: uint32(i + 1), Name: file, Content: string(data), Group: auth.GroupID(*group),
		}
		if _, known := p.Document(doc.ID); known {
			if err := p.UpdateDocument(tok, doc); err != nil {
				log.Fatalf("zerber-peer: %s: %v", file, err)
			}
			updated++
			continue
		}
		if err := batch.Add(doc); err != nil {
			log.Fatalf("zerber-peer: %s: %v", file, err)
		}
	}
	elements := batch.Elements()
	if err := batch.Flush(tok); err != nil {
		log.Fatalf("zerber-peer: indexing: %v", err)
	}
	if updated > 0 {
		fmt.Printf("%s: diff-updated %d journal-known document(s)\n", *name, updated)
	}
	// Files removed since the last run: their journal-known documents
	// (IDs past the current directory's end) would otherwise stay
	// indexed — and searchable — forever.
	removed := 0
	for _, id := range p.DocIDs() {
		if int(id) > len(names) {
			if err := p.DeleteDocument(tok, id); err != nil {
				log.Fatalf("zerber-peer: removing vanished doc %d: %v", id, err)
			}
			removed++
		}
	}
	if removed > 0 {
		fmt.Printf("%s: deleted %d document(s) whose files vanished\n", *name, removed)
	}
	// Publish the docID -> filename map next to the table so
	// zerber-search can label results.
	docmap := make(map[uint32]string, len(names))
	for i, file := range names {
		docmap[uint32(i+1)] = file
	}
	if data, err := json.MarshalIndent(docmap, "", "  "); err == nil {
		mapPath := filepath.Join(filepath.Dir(*tablePath), "docmap.json")
		if err := os.WriteFile(mapPath, data, 0o644); err != nil {
			log.Printf("zerber-peer: writing %s: %v", mapPath, err)
		}
	}
	fmt.Printf("%s: indexed %d documents (%d elements) to %d servers; serving snippets on %s\n",
		*name, len(names), elements, len(apis), *addr)

	log.Fatal(http.ListenAndServe(*addr, peer.NewHTTPHandler(p, svc, groupTable)))
}

func readDir(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatalf("zerber-peer: %v", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		if ext == ".txt" || ext == ".md" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		log.Fatalf("zerber-peer: no .txt/.md documents under %s", dir)
	}
	return names
}

func readJSON(path string, v any) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("zerber-peer: %v (run zerber-index -build-table first?)", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatalf("zerber-peer: decoding %s: %v", path, err)
	}
}
