// Command zerber-search runs ranked keyword queries against a Zerber
// cluster from the command line (the querying-user side of Algorithm 2).
//
// Usage:
//
//	zerber-search -servers h1:8291,h2:8291,h3:8291 \
//	              -k 2 -key <hex> -user alice \
//	              -table table.json -vocab vocab.json \
//	              martha imclone
//
// The client fans the request to k servers, joins and decrypts the
// shares, filters false positives from merged lists, ranks with TF-IDF
// over the user's personalized statistics, and prints the top results.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"zerber/internal/auth"
	"zerber/internal/client"
	"zerber/internal/merging"
	"zerber/internal/peer"
	"zerber/internal/ranking"
	"zerber/internal/transport"
	"zerber/internal/vocab"
)

func main() {
	var (
		servers   = flag.String("servers", "", "comma-separated index server addresses (host:port or binary:// for the binary codec, http:// for JSON/HTTP)")
		k         = flag.Int("k", 2, "secret-sharing threshold")
		keyHex    = flag.String("key", "", "enterprise auth key (hex)")
		user      = flag.String("user", "", "authenticated user")
		tablePath = flag.String("table", "table.json", "mapping table file")
		vocabPath = flag.String("vocab", "vocab.json", "vocabulary file")
		topK      = flag.Int("top", 10, "number of results")
		topkMode  = flag.Bool("topk", false, "early-terminating top-k retrieval (score-ordered blocks, frequency-sum ranking)")
		peers     = flag.String("peers", "", "comma-separated peer snippet-service URLs (optional)")
		verbose   = flag.Bool("v", false, "print retrieval statistics")
	)
	flag.Parse()
	query := flag.Args()
	if len(query) == 0 {
		log.Fatal("zerber-search: no query terms (pass them as arguments)")
	}
	if *servers == "" || *keyHex == "" || *user == "" {
		log.Fatal("zerber-search: -servers, -key and -user are required")
	}
	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		log.Fatalf("zerber-search: bad -key: %v", err)
	}

	var table merging.Table
	readJSON(*tablePath, &table)
	voc := vocab.New()
	readJSON(*vocabPath, voc)

	var apis []transport.API
	for _, u := range strings.Split(*servers, ",") {
		c, err := transport.Dial(strings.TrimSpace(u), 10*time.Second)
		if err != nil {
			log.Fatalf("zerber-search: %v", err)
		}
		apis = append(apis, c)
	}
	cl, err := client.New(apis, *k, &table, voc)
	if err != nil {
		log.Fatal(err)
	}

	svc := auth.NewServiceWithKey(key, time.Hour)
	tok := svc.Issue(auth.UserID(*user))

	start := time.Now()
	var (
		results []ranking.ScoredDoc
		stats   client.Stats
	)
	if *topkMode {
		results, stats, err = cl.SearchTopK(tok, lower(query), *topK)
	} else {
		results, stats, err = cl.Search(tok, lower(query), *topK)
	}
	if err != nil {
		log.Fatalf("zerber-search: %v", err)
	}
	elapsed := time.Since(start)

	docmap := map[uint32]string{}
	if data, err := os.ReadFile(filepath.Join(filepath.Dir(*tablePath), "docmap.json")); err == nil {
		_ = json.Unmarshal(data, &docmap) // labels are cosmetic; ignore errors
	}

	// Optional Algorithm 2 final step: fetch snippets from the hosting
	// peers for the top-K results.
	var snippetClients []*peer.SnippetClient
	for _, u := range splitNonEmpty(*peers) {
		snippetClients = append(snippetClients, peer.DialSnippets(u, 10*time.Second))
	}
	if len(results) == 0 {
		fmt.Println("no accessible documents match")
	}
	for i, r := range results {
		name := docmap[r.DocID]
		if name == "" {
			name = fmt.Sprintf("doc %d", r.DocID)
		}
		fmt.Printf("%2d. %-40s score %.4f\n", i+1, name, r.Score)
		for _, sc := range snippetClients {
			resp, err := sc.Snippet(tok, r.DocID, lower(query), 0)
			if err != nil {
				continue // wrong peer or inaccessible; try the next
			}
			fmt.Printf("    %s\n", resp.Snippet)
			break
		}
	}
	if *verbose {
		fmt.Printf("\n%d lists requested, %d elements decrypted, %d false positives filtered, %d servers, %v\n",
			stats.ListsRequested, stats.ElementsFetched, stats.FalsePositives,
			stats.ServersQueried, elapsed.Round(time.Millisecond))
		if *topkMode {
			fmt.Printf("top-k: %d/%d postings touched, %d block fetches, %d bytes on wire, depth %d\n",
				stats.TA.ElementsDecrypted, stats.TA.TotalPostings,
				stats.TA.BlocksFetched, stats.TA.WireBytes, stats.TA.Depth)
		}
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func lower(terms []string) []string {
	out := make([]string, len(terms))
	for i, t := range terms {
		out[i] = strings.ToLower(t)
	}
	return out
}

func readJSON(path string, v any) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("zerber-search: %v (run zerber-index -build-table first?)", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatalf("zerber-search: decoding %s: %v", path, err)
	}
}
